//! Cache configuration.

/// Write policy of the simulated cache (§4.2 compares the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Write-back: writes dirty the cache block; main memory is updated
    /// only on eviction. The PSI uses this ("store-in method",
    /// spec item (c)).
    StoreIn,
    /// Write-through: every write is sent to main memory. Modelled with
    /// a one-deep write buffer, so a write stalls only while a previous
    /// memory operation is still in flight.
    StoreThrough,
}

/// Full parameter set of the simulated cache.
///
/// [`CacheConfig::psi`] reproduces the machine as built; the other
/// constructors support the paper's design studies.
///
/// ```
/// use psi_cache::CacheConfig;
/// let psi = CacheConfig::psi();
/// assert_eq!(psi.capacity_words, 8192);
/// assert_eq!(psi.ways, 2);
/// assert_eq!(psi.blocks(), 2048);
/// assert_eq!(psi.sets(), 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in words (spec (a): 8K words on the real PSI).
    pub capacity_words: u32,
    /// Words per block (spec (e): four).
    pub block_words: u32,
    /// Associativity (spec (b): "two-set set associative" = 2 ways).
    pub ways: u32,
    /// Write policy (spec (c): store-in).
    pub policy: WritePolicy,
    /// Whether the specialized write-stack command suppresses block
    /// read-in on a write miss (spec (g)).
    pub write_stack_no_fetch: bool,
    /// Access time on a hit, in nanoseconds (spec (d): 200 ns).
    pub hit_ns: u64,
    /// Access time on a miss, in nanoseconds (spec (d): 800 ns,
    /// including the four-word block transfer of spec (f)).
    pub miss_ns: u64,
    /// Time main memory is occupied by a block transfer (write-back or
    /// write-through drain), in nanoseconds (spec (f): 800 ns).
    pub memory_busy_ns: u64,
}

impl CacheConfig {
    /// The cache exactly as the PSI shipped it (§2.2 spec (a)–(g)).
    pub fn psi() -> CacheConfig {
        CacheConfig {
            capacity_words: 8192,
            block_words: 4,
            ways: 2,
            policy: WritePolicy::StoreIn,
            write_stack_no_fetch: true,
            hit_ns: 200,
            miss_ns: 800,
            memory_busy_ns: 800,
        }
    }

    /// A capacity variant of the PSI cache, for the Figure 1 sweep
    /// (8 words to 8K words; "other specifications are same with the
    /// cache memory of the PSI").
    ///
    /// # Panics
    ///
    /// Panics if `capacity_words` is not a multiple of one block per
    /// way (the minimum is `block_words * ways` = 8 words, exactly the
    /// smallest point of Figure 1).
    pub fn psi_with_capacity(capacity_words: u32) -> CacheConfig {
        let mut c = CacheConfig::psi();
        c.capacity_words = capacity_words;
        c.validate();
        c
    }

    /// The §4.2 direct-mapped study: one 4K-word set instead of two.
    pub fn psi_direct_mapped_4k() -> CacheConfig {
        let mut c = CacheConfig::psi();
        c.capacity_words = 4096;
        c.ways = 1;
        c
    }

    /// The §4.2 two-set 4K-per-set arrangement (2 × 4 KW).
    pub fn psi_two_set_8k() -> CacheConfig {
        CacheConfig::psi()
    }

    /// The §4.2 store-through comparison point.
    pub fn psi_store_through() -> CacheConfig {
        let mut c = CacheConfig::psi();
        c.policy = WritePolicy::StoreThrough;
        c
    }

    /// Number of blocks in the cache.
    pub fn blocks(&self) -> u32 {
        self.capacity_words / self.block_words
    }

    /// Number of sets (blocks divided by ways).
    pub fn sets(&self) -> u32 {
        self.blocks() / self.ways
    }

    /// Extra stall a miss costs beyond a hit.
    pub fn miss_extra_ns(&self) -> u64 {
        self.miss_ns - self.hit_ns
    }

    fn validate(&self) {
        assert!(
            self.block_words.is_power_of_two(),
            "block size power of two"
        );
        assert!(
            self.capacity_words
                .is_multiple_of(self.block_words * self.ways)
                && self.capacity_words >= self.block_words * self.ways,
            "capacity {} not compatible with block {} x ways {}",
            self.capacity_words,
            self.block_words,
            self.ways
        );
        assert!(self.sets().is_power_of_two(), "set count power of two");
    }

    /// Checks internal consistency; called by [`Cache::new`](crate::Cache::new).
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not a
    /// power-of-two multiple of `block_words * ways`).
    pub fn assert_valid(&self) {
        self.validate();
    }
}

impl Default for CacheConfig {
    /// Defaults to the real PSI cache.
    fn default() -> CacheConfig {
        CacheConfig::psi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psi_geometry_matches_spec() {
        let c = CacheConfig::psi();
        assert_eq!(c.blocks(), 2048);
        assert_eq!(c.sets(), 1024);
        assert_eq!(c.miss_extra_ns(), 600);
        c.assert_valid();
    }

    #[test]
    fn figure1_sweep_points_are_valid() {
        // Figure 1 sweeps 8 words .. 8K words in powers of two.
        let mut cap = 8;
        while cap <= 8192 {
            CacheConfig::psi_with_capacity(cap).assert_valid();
            cap *= 2;
        }
    }

    #[test]
    fn direct_mapped_study_geometry() {
        let c = CacheConfig::psi_direct_mapped_4k();
        assert_eq!(c.ways, 1);
        assert_eq!(c.sets(), 1024);
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "not compatible")]
    fn invalid_capacity_panics() {
        CacheConfig::psi_with_capacity(4);
    }

    /// Derived geometry for every configuration the tests use: the
    /// `tiny()` harness cache is 4 sets (not 2 — 32 words / 4-word
    /// blocks / 2 ways), the Figure 1 minimum is a single set, and the
    /// store-through variant keeps the PSI geometry.
    #[test]
    fn derived_geometry_of_test_configs() {
        let tiny = CacheConfig {
            capacity_words: 32,
            ..CacheConfig::psi()
        };
        assert_eq!(tiny.blocks(), 8);
        assert_eq!(tiny.sets(), 4);
        assert_eq!(tiny.ways, 2);
        tiny.assert_valid();

        let minimum = CacheConfig::psi_with_capacity(8);
        assert_eq!(minimum.blocks(), 2);
        assert_eq!(minimum.sets(), 1);

        let st = CacheConfig::psi_store_through();
        assert_eq!(st.blocks(), 2048);
        assert_eq!(st.sets(), 1024);
        assert_eq!(st.ways, 2);
    }
}
