//! Per-area cache statistics, the raw material of Tables 3–5.

use psi_core::{Area, AREA_COUNT};

/// Hit/miss counters for one memory area and the three cache commands.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AreaCacheCounters {
    /// Read commands issued.
    pub reads: u64,
    /// Ordinary write commands issued.
    pub writes: u64,
    /// Write-stack commands issued.
    pub write_stacks: u64,
    /// Read commands that hit.
    pub read_hits: u64,
    /// Write commands that hit.
    pub write_hits: u64,
    /// Write-stack commands that hit.
    pub write_stack_hits: u64,
}

impl AreaCacheCounters {
    /// Total accesses to this area.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes + self.write_stacks
    }

    /// Total hits in this area.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits + self.write_stack_hits
    }

    /// Total misses in this area.
    pub fn misses(&self) -> u64 {
        self.accesses() - self.hits()
    }

    /// Hit ratio in percent, or `None` if the area was never accessed.
    pub fn hit_ratio_pct(&self) -> Option<f64> {
        let a = self.accesses();
        (a > 0).then(|| self.hits() as f64 * 100.0 / a as f64)
    }

    /// Total write commands of either kind.
    pub fn all_writes(&self) -> u64 {
        self.writes + self.write_stacks
    }

    fn merge(&mut self, other: &AreaCacheCounters) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.write_stacks += other.write_stacks;
        self.read_hits += other.read_hits;
        self.write_hits += other.write_hits;
        self.write_stack_hits += other.write_stack_hits;
    }
}

/// Aggregate statistics of one cache simulation run.
///
/// Backed entirely by fixed-size arrays of counters, so it is `Copy`:
/// snapshotting a run's statistics is a bit copy, never a heap clone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    per_area: [AreaCacheCounters; AREA_COUNT],
    /// Total stall time beyond the 200 ns cycle, in nanoseconds.
    pub stall_ns: u64,
    /// Dirty blocks written back to main memory (store-in only).
    pub writebacks: u64,
    /// Blocks fetched from main memory.
    pub block_fetches: u64,
    /// Individual words sent to memory by store-through writes.
    pub through_writes: u64,
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> CacheStats {
        CacheStats::default()
    }

    /// The counters for `area`.
    pub fn area(&self, area: Area) -> &AreaCacheCounters {
        &self.per_area[area.index()]
    }

    /// Mutable counters for `area` (used by the simulator).
    pub fn area_mut(&mut self, area: Area) -> &mut AreaCacheCounters {
        &mut self.per_area[area.index()]
    }

    /// Counters summed over all areas.
    pub fn total(&self) -> AreaCacheCounters {
        let mut t = AreaCacheCounters::default();
        for c in &self.per_area {
            t.merge(c);
        }
        t
    }

    /// Overall hit ratio in percent, or `None` if nothing was accessed.
    pub fn hit_ratio_pct(&self) -> Option<f64> {
        self.total().hit_ratio_pct()
    }

    /// The share of each area in total accesses, in percent, in
    /// [`Area::ALL`](psi_core::Area::ALL) order (Table 4 rows).
    pub fn area_shares_pct(&self) -> [f64; AREA_COUNT] {
        let total = self.total().accesses().max(1) as f64;
        let mut out = [0.0; AREA_COUNT];
        for area in Area::ALL {
            out[area.index()] = self.per_area[area.index()].accesses() as f64 * 100.0 / total;
        }
        out
    }

    /// Read-to-write command ratio (the paper reports ≈ 3:1).
    pub fn read_write_ratio(&self) -> Option<f64> {
        let t = self.total();
        (t.all_writes() > 0).then(|| t.reads as f64 / t.all_writes() as f64)
    }

    /// Write-stack share of all write commands in percent (the paper
    /// reports 50–75%).
    pub fn write_stack_share_pct(&self) -> Option<f64> {
        let t = self.total();
        (t.all_writes() > 0).then(|| t.write_stacks as f64 * 100.0 / t.all_writes() as f64)
    }

    /// Merges another run's statistics into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        for i in 0..AREA_COUNT {
            self.per_area[i].merge(&other.per_area[i]);
        }
        self.stall_ns += other.stall_ns;
        self.writebacks += other.writebacks;
        self.block_fetches += other.block_fetches;
        self.through_writes += other.through_writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_have_no_ratios() {
        let s = CacheStats::new();
        assert_eq!(s.hit_ratio_pct(), None);
        assert_eq!(s.read_write_ratio(), None);
        assert_eq!(s.write_stack_share_pct(), None);
        assert_eq!(s.total().accesses(), 0);
        // No 0/0 → NaN anywhere on fresh stats: per-area ratios are
        // None and the share table is exactly zero.
        for area in Area::ALL {
            assert_eq!(s.area(area).hit_ratio_pct(), None);
            assert_eq!(s.area(area).misses(), 0);
        }
        for share in s.area_shares_pct() {
            assert_eq!(share, 0.0);
            assert!(share.is_finite());
        }
    }

    #[test]
    fn derived_ratios() {
        let mut s = CacheStats::new();
        {
            let heap = s.area_mut(Area::Heap);
            heap.reads = 90;
            heap.read_hits = 81;
            heap.writes = 20;
            heap.write_hits = 20;
            heap.write_stacks = 10;
            heap.write_stack_hits = 10;
        }
        let t = s.total();
        assert_eq!(t.accesses(), 120);
        assert_eq!(t.hits(), 111);
        assert_eq!(t.misses(), 9);
        assert!((s.hit_ratio_pct().unwrap() - 92.5).abs() < 1e-9);
        assert!((s.read_write_ratio().unwrap() - 3.0).abs() < 1e-9);
        assert!((s.write_stack_share_pct().unwrap() - 100.0 / 3.0).abs() < 1e-9);
        let shares = s.area_shares_pct();
        assert!((shares[Area::Heap.index()] - 100.0).abs() < 1e-9);
        assert_eq!(shares[Area::TrailStack.index()], 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CacheStats::new();
        a.area_mut(Area::LocalStack).reads = 5;
        a.stall_ns = 100;
        let mut b = CacheStats::new();
        b.area_mut(Area::LocalStack).reads = 7;
        b.stall_ns = 50;
        a.merge(&b);
        assert_eq!(a.area(Area::LocalStack).reads, 12);
        assert_eq!(a.stall_ns, 150);
    }
}
