//! PMMS-style parametric cache simulator.
//!
//! The paper's authors built a cache memory simulator called **PMMS**
//! to study hit ratios under varying cache specifications (§4.1). This
//! crate is that simulator: a trace- or execution-driven model of the
//! PSI cache with every parameter of the real hardware exposed:
//!
//! * capacity (the real machine had 8K words; Figure 1 sweeps 8 W–8 KW),
//! * set associativity ("two-set set associative" = 2 ways),
//! * 4-word blocks with 800 ns block transfer,
//! * store-in (write-back) vs. store-through (write-through) policy,
//! * the specialized **write-stack** command that skips block read-in
//!   on a write miss (used for pushes to stack tops, spec item (g)).
//!
//! Timing follows §2.2: 200 ns on a hit, 800 ns on a miss.
//!
//! # Example
//!
//! ```
//! use psi_cache::{Cache, CacheCommand, CacheConfig};
//! use psi_core::{Address, Area, ProcessId};
//!
//! let mut cache = Cache::new(CacheConfig::psi());
//! let a = Address::new(ProcessId::ZERO, Area::LocalStack, 0);
//! let first = cache.access(CacheCommand::Read, a);
//! let second = cache.access(CacheCommand::Read, a);
//! assert!(!first.hit);
//! assert!(second.hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod sim;
mod stats;

pub use config::{CacheConfig, WritePolicy};
pub use sim::{AccessOutcome, Cache, CacheCommand};
pub use stats::{AreaCacheCounters, CacheStats};
