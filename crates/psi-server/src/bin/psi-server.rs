//! Stand-alone PSI query server.
//!
//! Usage: `cargo run --release -p psi-server --bin psi-server --
//! [--addr HOST:PORT] [--max-steps N] [--deadline-ms N]
//! [--preload FILE]...`
//!
//! Binds the address (default `127.0.0.1:7878`), prints the bound
//! address on stdout, and serves until killed. Per-session caps
//! default to [`psi_server::default_caps`]; the flags tighten them.
//!
//! Each `--preload FILE` consults the KL0 program in FILE into a pool
//! template before serving, so even the *first* session consulting
//! that exact source text is served by a cheap [fork] instead of a
//! compile.
//!
//! [fork]: psi_machine::Machine::fork

use psi_server::{Server, ServerOptions};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut options = ServerOptions {
        addr: "127.0.0.1:7878".to_owned(),
        ..ServerOptions::default()
    };
    let mut preloads: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => options.addr = a,
                None => return usage("--addr requires HOST:PORT"),
            },
            "--max-steps" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => options.caps.max_steps = Some(n),
                None => return usage("--max-steps requires an integer"),
            },
            "--deadline-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => options.caps.deadline = Some(Duration::from_millis(n)),
                None => return usage("--deadline-ms requires an integer"),
            },
            "--preload" => match args.next() {
                Some(path) => preloads.push(path),
                None => return usage("--preload requires a file path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let server = match Server::spawn(options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("psi-server: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    for path in &preloads {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("psi-server: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = server.pool().preload(&source) {
            eprintln!("psi-server: preload {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("psi-server preloaded template from {path}");
    }
    println!("psi-server listening on {}", server.local_addr());
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("psi-server: {msg}");
    eprintln!(
        "usage: psi-server [--addr HOST:PORT] [--max-steps N] [--deadline-ms N] [--preload FILE]..."
    );
    ExitCode::FAILURE
}
