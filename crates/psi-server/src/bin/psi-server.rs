//! Stand-alone PSI query server.
//!
//! Usage: `cargo run --release -p psi-server --bin psi-server --
//! [--addr HOST:PORT] [--max-steps N] [--deadline-ms N]`
//!
//! Binds the address (default `127.0.0.1:7878`), prints the bound
//! address on stdout, and serves until killed. Per-session caps
//! default to [`psi_server::default_caps`]; the flags tighten them.

use psi_server::{Server, ServerOptions};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut options = ServerOptions {
        addr: "127.0.0.1:7878".to_owned(),
        ..ServerOptions::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => options.addr = a,
                None => return usage("--addr requires HOST:PORT"),
            },
            "--max-steps" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => options.caps.max_steps = Some(n),
                None => return usage("--max-steps requires an integer"),
            },
            "--deadline-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => options.caps.deadline = Some(Duration::from_millis(n)),
                None => return usage("--deadline-ms requires an integer"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let server = match Server::spawn(options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("psi-server: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("psi-server listening on {}", server.local_addr());
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("psi-server: {msg}");
    eprintln!("usage: psi-server [--addr HOST:PORT] [--max-steps N] [--deadline-ms N]");
    ExitCode::FAILURE
}
