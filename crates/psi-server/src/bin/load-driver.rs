//! Concurrent-load benchmark for the query server.
//!
//! Spawns an in-process server, then drives it with N concurrent
//! client sessions, each running the Table 1 programs end-to-end
//! (connect → consult → solve → close, the serving unit of work),
//! while an isolation probe concurrently exhausts its own
//! session's tightened budget to prove one tenant's failure stays in
//! its session. Every streamed solution and step count is verified
//! against a serial in-process run of the same machine configuration
//! — concurrency must be bit-invisible.
//!
//! Usage: `cargo run --release -p psi-server --bin load-driver --
//! [--quick] [--sessions N] [--passes M] [--rows FILTER] [--out PATH]`
//!
//! `--quick` is the CI smoke mode: one pass per session.
//! `--rows` selects a subset exactly like perfbench (1-based row
//! numbers or name substrings, comma-separated); a subset is a spot
//! check and never overwrites the archived report. Writes
//! `BENCH_server.json` at the repository root by default. Exits
//! nonzero on any verification or isolation failure.

use psi_server::{percentile, Client, ClientError, LimitsPatch, Server, ServerOptions};
use psi_workloads::suite::{table1_suite, Table1Entry};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

struct Expected {
    name: String,
    goal: String,
    source: String,
    max: u64,
    bindings: Vec<String>,
    steps: u64,
}

#[derive(Default)]
struct RowStats {
    queries: u64,
    latencies_ns: Vec<u64>,
    mismatches: u64,
}

fn main() -> ExitCode {
    let mut sessions: usize = 8;
    let mut passes: usize = 3;
    let mut quick = false;
    let mut rows_filter: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                quick = true;
                passes = 1;
            }
            "--sessions" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => sessions = n,
                _ => return usage("--sessions requires a positive integer"),
            },
            "--passes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => passes = n,
                _ => return usage("--passes requires a positive integer"),
            },
            "--rows" => match args.next() {
                Some(spec) => rows_filter = Some(spec),
                None => return usage("--rows requires a filter"),
            },
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => return usage("--out requires a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let out_path = out_path
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json").into());
    let path = std::path::Path::new(&out_path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            eprintln!(
                "load-driver: output directory `{}` does not exist",
                parent.display()
            );
            return ExitCode::FAILURE;
        }
    }

    let suite = select_rows(table1_suite(), rows_filter.as_deref());
    if suite.is_empty() {
        eprintln!(
            "load-driver: --rows `{}` matched no Table 1 programs",
            rows_filter.as_deref().unwrap_or("")
        );
        return ExitCode::FAILURE;
    }

    // Serial ground truth: the same serving configuration, no server,
    // no concurrency. Every session's streamed results must match
    // these bit-for-bit (bindings and simulated steps).
    eprintln!(
        "load-driver: computing serial reference for {} programs",
        suite.len()
    );
    let mut expected = Vec::new();
    for entry in &suite {
        let w = &entry.workload;
        let program = match kl0::Program::parse(&w.source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("load-driver: `{}` does not parse: {e}", w.name);
                return ExitCode::FAILURE;
            }
        };
        let mut machine = match psi_machine::Machine::load(&program, psi_server::serving_config()) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("load-driver: `{}` does not load: {e}", w.name);
                return ExitCode::FAILURE;
            }
        };
        let solutions = match machine.solve(&w.goal, w.max_solutions) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("load-driver: `{}` does not solve: {e}", w.name);
                return ExitCode::FAILURE;
            }
        };
        expected.push(Expected {
            name: w.name.clone(),
            goal: w.goal.clone(),
            source: w.source.clone(),
            max: u64::try_from(w.max_solutions).unwrap_or(u64::MAX),
            bindings: solutions.iter().map(ToString::to_string).collect(),
            steps: machine.stats().steps,
        });
    }
    let expected = Arc::new(expected);

    let server = match Server::spawn(ServerOptions::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("load-driver: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    eprintln!(
        "load-driver: server on {addr}, {sessions} sessions x {passes} passes x {} programs",
        expected.len()
    );

    let started = Instant::now();
    let mut workers = Vec::new();
    for session_id in 0..sessions {
        let expected = Arc::clone(&expected);
        workers.push(std::thread::spawn(move || {
            run_session(session_id, addr, &expected, passes)
        }));
    }
    let probe = std::thread::spawn(move || isolation_probe(addr));

    let mut per_row: Vec<RowStats> = expected.iter().map(|_| RowStats::default()).collect();
    let mut transport_errors = 0u64;
    for w in workers {
        match w.join() {
            Ok(Ok(session_rows)) => {
                for (row, got) in per_row.iter_mut().zip(session_rows) {
                    row.queries += got.queries;
                    row.mismatches += got.mismatches;
                    row.latencies_ns.extend(got.latencies_ns);
                }
            }
            Ok(Err(e)) => {
                eprintln!("load-driver: session failed: {e}");
                transport_errors += 1;
            }
            Err(_) => {
                eprintln!("load-driver: session thread panicked");
                transport_errors += 1;
            }
        }
    }
    let isolation_ok = match probe.join() {
        Ok(Ok(())) => true,
        Ok(Err(e)) => {
            eprintln!("load-driver: isolation probe failed: {e}");
            false
        }
        Err(_) => {
            eprintln!("load-driver: isolation probe panicked");
            false
        }
    };
    let wall = started.elapsed();
    let warm_hits = server.pool().idle_count();
    server.shutdown();

    let total_queries: u64 = per_row.iter().map(|r| r.queries).sum();
    let total_mismatches: u64 = per_row.iter().map(|r| r.mismatches).sum();
    let verified = total_mismatches == 0 && transport_errors == 0;
    let throughput = total_queries as f64 / wall.as_secs_f64();

    let all: Vec<u64> = per_row
        .iter()
        .flat_map(|r| r.latencies_ns.iter().copied())
        .collect();
    println!(
        "{total_queries} queries over {sessions} sessions in {:.2}s ({throughput:.1} q/s), \
         p50 {:.2} ms, p99 {:.2} ms, {} machines left warm",
        wall.as_secs_f64(),
        percentile(&all, 0.50) as f64 / 1e6,
        percentile(&all, 0.99) as f64 / 1e6,
        warm_hits,
    );
    println!(
        "verification: {}, isolation probe: {}",
        if verified {
            "all solutions and step counts identical to serial"
        } else {
            "MISMATCH"
        },
        if isolation_ok { "ok" } else { "FAILED" },
    );

    let json = render_json(
        quick,
        sessions,
        passes,
        total_queries,
        wall.as_secs_f64(),
        throughput,
        verified,
        isolation_ok,
        &expected,
        &per_row,
    );
    // A row subset is a spot check, not the archive.
    if rows_filter.is_none() {
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("load-driver: cannot write {out_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {out_path}");
    }

    if verified && isolation_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One load session: `passes` rounds over the suite, each query a
/// fresh connection (connect → consult → solve → close), rotated by
/// `session_id` so sessions hit different programs at the same time.
fn run_session(
    session_id: usize,
    addr: SocketAddr,
    expected: &[Expected],
    passes: usize,
) -> Result<Vec<RowStats>, ClientError> {
    let mut rows: Vec<RowStats> = expected.iter().map(|_| RowStats::default()).collect();
    for _ in 0..passes {
        for offset in 0..expected.len() {
            let index = (session_id + offset) % expected.len();
            let e = &expected[index];
            let t0 = Instant::now();
            let mut client = Client::connect(addr)?;
            client.consult(&e.source)?;
            let reply = client.solve(&e.goal, e.max)?;
            client.close()?;
            let latency = t0.elapsed();
            let row = &mut rows[index];
            row.queries += 1;
            row.latencies_ns
                .push(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
            if reply.bindings != e.bindings || reply.steps != e.steps {
                eprintln!(
                    "load-driver: `{}` diverged under load: {} solutions / {} steps, \
                     expected {} / {}",
                    e.name,
                    reply.bindings.len(),
                    reply.steps,
                    e.bindings.len(),
                    e.steps
                );
                row.mismatches += 1;
            }
        }
    }
    Ok(rows)
}

/// The tenancy check: a session that tightens its own budget and
/// exhausts it must get a typed `resource_exhausted` error — and then
/// keep working — while the load sessions run unperturbed.
fn isolation_probe(addr: SocketAddr) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    client
        .consult("nat(z). nat(s(X)) :- nat(X).")
        .map_err(|e| e.to_string())?;
    client
        .set_limits(&LimitsPatch {
            max_steps: Some(20_000),
            ..LimitsPatch::default()
        })
        .map_err(|e| e.to_string())?;
    match client.solve("nat(X)", u64::MAX) {
        Err(ClientError::Wire(w)) if w.kind == "resource_exhausted" => {}
        Err(e) => return Err(format!("expected resource_exhausted, got error {e}")),
        Ok(r) => {
            return Err(format!(
                "expected resource_exhausted, got {} solutions",
                r.bindings.len()
            ))
        }
    }
    // The same session survives its own exhaustion.
    let reply = client.solve("nat(z)", 1).map_err(|e| e.to_string())?;
    if reply.bindings != ["true"] {
        return Err(format!(
            "post-exhaustion solve answered {:?}",
            reply.bindings
        ));
    }
    client.close().map_err(|e| e.to_string())
}

fn select_rows(suite: Vec<Table1Entry>, filter: Option<&str>) -> Vec<Table1Entry> {
    let Some(filter) = filter else { return suite };
    let tokens: Vec<String> = filter
        .split(',')
        .map(|t| t.trim().to_ascii_lowercase())
        .filter(|t| !t.is_empty())
        .collect();
    suite
        .into_iter()
        .filter(|entry| {
            tokens.iter().any(|t| {
                t.parse::<usize>()
                    .map(|n| n == entry.index)
                    .unwrap_or(false)
                    || entry.workload.name.to_ascii_lowercase().contains(t)
            })
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    quick: bool,
    sessions: usize,
    passes: usize,
    total_queries: u64,
    wall_s: f64,
    throughput: f64,
    verified: bool,
    isolation_ok: bool,
    expected: &[Expected],
    per_row: &[RowStats],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"psi-bench-server-v1\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"sessions\": {sessions},\n"));
    out.push_str(&format!("  \"passes\": {passes},\n"));
    out.push_str(&format!("  \"total_queries\": {total_queries},\n"));
    out.push_str(&format!("  \"wall_s\": {wall_s:.3},\n"));
    out.push_str(&format!("  \"throughput_qps\": {throughput:.2},\n"));
    out.push_str(&format!("  \"verified\": {verified},\n"));
    out.push_str(&format!("  \"isolation_ok\": {isolation_ok},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, (e, row)) in expected.iter().zip(per_row.iter()).enumerate() {
        let p50 = percentile(&row.latencies_ns, 0.50);
        let p99 = percentile(&row.latencies_ns, 0.99);
        let mean = if row.latencies_ns.is_empty() {
            0
        } else {
            row.latencies_ns.iter().sum::<u64>() / row.latencies_ns.len() as u64
        };
        out.push_str(&format!(
            "    {{\"program\": \"{}\", \"queries\": {}, \"solutions\": {}, \"steps\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"mean_us\": {}}}{}\n",
            psi_tools::json::escape(&e.name),
            row.queries,
            e.bindings.len(),
            e.steps,
            p50 / 1_000,
            p99 / 1_000,
            mean / 1_000,
            if i + 1 < expected.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("load-driver: {msg}");
    eprintln!(
        "usage: load-driver [--quick] [--sessions N] [--passes M] [--rows FILTER] [--out PATH]"
    );
    ExitCode::FAILURE
}
