//! A small blocking client for the wire protocol, used by the
//! `load-driver` binary and the integration tests. It speaks exactly
//! the protocol in PROTOCOL.md and surfaces server-side errors as
//! typed [`WireError`] values rather than strings.

use crate::protocol::LimitsPatch;
use psi_tools::json::{parse_object, JsonObject, ObjectBuilder};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// An error line received from the server: the stable wire code, the
/// stable kind label, and the human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable numeric code (1–9 engine, 100+ server).
    pub code: u64,
    /// Stable kind label (`"resource_exhausted"`, `"protocol"`, …).
    pub kind: String,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "server error {} ({}): {}",
            self.code, self.kind, self.message
        )
    }
}

/// Anything that can go wrong on the client side of a request.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connection refused, reset, timeout).
    Io(std::io::Error),
    /// The server answered with an error line.
    Wire(WireError),
    /// The server sent something the client cannot decode.
    Decode(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Decode(m) => write!(f, "undecodable response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// The result of one `solve`: the streamed bindings plus the totals
/// from the `done` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveReply {
    /// Rendered bindings, one per solution, in discovery order.
    pub bindings: Vec<String>,
    /// Microinstruction steps of the run.
    pub steps: u64,
    /// Simulated time of the run in nanoseconds.
    pub sim_time_ns: u64,
}

/// A blocking protocol client over one TCP connection (= one session).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects and consumes the `hello` greeting.
    ///
    /// # Errors
    ///
    /// Transport errors, or a greeting that is not a `hello`.
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
        };
        let hello = client.recv()?;
        match hello.str_field("event") {
            Ok("hello") => Ok(client),
            _ => Err(ClientError::Decode("greeting is not a hello".into())),
        }
    }

    /// Sends one raw line and returns the next response object —
    /// the escape hatch the hostile-input tests use.
    ///
    /// # Errors
    ///
    /// Transport or decode errors (an `ok:false` response is returned
    /// as a normal object here, not as `Err`).
    pub fn roundtrip_raw(&mut self, line: &str) -> Result<JsonObject, ClientError> {
        self.send(line)?;
        self.recv()
    }

    /// Consults KL0 source into the session.
    ///
    /// # Errors
    ///
    /// Typed wire errors (syntax/compile), or transport failures.
    pub fn consult(&mut self, src: &str) -> Result<(), ClientError> {
        let line = ObjectBuilder::new()
            .str("cmd", "consult")
            .str("src", src)
            .finish();
        self.send(&line)?;
        self.expect_ack("consulted")
    }

    /// Solves `goal`, requesting up to `max` solutions.
    ///
    /// # Errors
    ///
    /// Typed wire errors (undefined predicate, resource exhaustion,
    /// …), or transport failures.
    pub fn solve(&mut self, goal: &str, max: u64) -> Result<SolveReply, ClientError> {
        let line = ObjectBuilder::new()
            .str("cmd", "solve")
            .str("goal", goal)
            .u64("max", max)
            .finish();
        self.send(&line)?;
        let mut bindings = Vec::new();
        loop {
            let obj = self.recv()?;
            match self.event_of(&obj)? {
                "solution" => {
                    let b = obj
                        .str_field("bindings")
                        .map_err(|e| ClientError::Decode(e.to_string()))?;
                    bindings.push(b.to_owned());
                }
                "done" => {
                    let steps = obj
                        .u64_field("steps")
                        .map_err(|e| ClientError::Decode(e.to_string()))?;
                    let sim_time_ns = obj
                        .u64_field("sim_time_ns")
                        .map_err(|e| ClientError::Decode(e.to_string()))?;
                    return Ok(SolveReply {
                        bindings,
                        steps,
                        sim_time_ns,
                    });
                }
                other => {
                    return Err(ClientError::Decode(format!(
                        "unexpected event \"{other}\" during solve"
                    )))
                }
            }
        }
    }

    /// Tightens the session's resource budgets.
    ///
    /// # Errors
    ///
    /// Transport or decode failures.
    pub fn set_limits(&mut self, patch: &LimitsPatch) -> Result<(), ClientError> {
        let mut b = ObjectBuilder::new().str("cmd", "limits");
        for (key, value) in [
            ("max_steps", patch.max_steps),
            ("deadline_ms", patch.deadline_ms),
            ("max_heap_words", patch.max_heap_words),
            ("max_local_words", patch.max_local_words),
            ("max_global_words", patch.max_global_words),
            ("max_control_words", patch.max_control_words),
            ("max_trail_words", patch.max_trail_words),
        ] {
            if let Some(v) = value {
                b = b.u64(key, v);
            }
        }
        self.send(&b.finish())?;
        self.expect_ack("limits")
    }

    /// Fetches the statistics of the session's most recent solve.
    ///
    /// # Errors
    ///
    /// Typed wire errors or transport failures.
    pub fn stats(&mut self) -> Result<JsonObject, ClientError> {
        self.send(&ObjectBuilder::new().str("cmd", "stats").finish())?;
        let obj = self.recv()?;
        match self.event_of(&obj)? {
            "stats" => Ok(obj),
            other => Err(ClientError::Decode(format!(
                "unexpected event \"{other}\" for stats"
            ))),
        }
    }

    /// Recycles the session's run state (consulted code stays).
    ///
    /// # Errors
    ///
    /// Transport or decode failures.
    pub fn reset(&mut self) -> Result<(), ClientError> {
        self.send(&ObjectBuilder::new().str("cmd", "reset").finish())?;
        self.expect_ack("reset")
    }

    /// Ends the session cleanly (returns the machine to the pool).
    ///
    /// # Errors
    ///
    /// Transport or decode failures.
    pub fn close(mut self) -> Result<(), ClientError> {
        self.send(&ObjectBuilder::new().str("cmd", "close").finish())?;
        self.expect_ack("bye")
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    fn recv(&mut self) -> Result<JsonObject, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        parse_object(line.trim_end()).map_err(|e| ClientError::Decode(e.to_string()))
    }

    /// Extracts the event name, converting `ok:false` lines into
    /// [`ClientError::Wire`].
    fn event_of<'a>(&self, obj: &'a JsonObject) -> Result<&'a str, ClientError> {
        let ok = obj
            .get("ok")
            .and_then(psi_tools::json::JsonValue::as_bool)
            .ok_or_else(|| ClientError::Decode("response has no ok field".into()))?;
        if !ok {
            return Err(ClientError::Wire(WireError {
                code: obj
                    .u64_field("code")
                    .map_err(|e| ClientError::Decode(e.to_string()))?,
                kind: obj
                    .str_field("kind")
                    .map_err(|e| ClientError::Decode(e.to_string()))?
                    .to_owned(),
                message: obj
                    .str_field("message")
                    .map_err(|e| ClientError::Decode(e.to_string()))?
                    .to_owned(),
            }));
        }
        obj.str_field("event")
            .map_err(|e| ClientError::Decode(e.to_string()))
    }

    fn expect_ack(&mut self, event: &str) -> Result<(), ClientError> {
        let obj = self.recv()?;
        match self.event_of(&obj)? {
            e if e == event => Ok(()),
            other => Err(ClientError::Decode(format!(
                "expected \"{event}\" ack, got \"{other}\""
            ))),
        }
    }
}
