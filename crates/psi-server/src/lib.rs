//! PSI-as-a-service: a warm-pool, multi-session query server.
//!
//! The simulator's natural unit of work — load a program, solve a
//! goal, read the statistics — is wrapped here in a serving layer so
//! many concurrent clients can consult KL0 programs and stream
//! solutions over TCP without paying a cold machine start per query:
//!
//! * [`protocol`] — the JSON-lines wire format (built on
//!   [`psi_tools::json`]), the stable error-code space, and the
//!   tenancy rule that clamps client budgets to server caps;
//! * [`pool`] — the warm [`psi_machine::Machine`] pool, keyed by
//!   exact consulted source, with the recycle/retire lifecycle;
//! * [`session`] — the per-connection state machine, including
//!   panic containment (a machine panic poisons one session, never
//!   the process);
//! * [`quantile`] — the shared latency-percentile estimator used by
//!   the benchmark reports;
//! * [`server`] — the thread-per-connection TCP front end;
//! * [`client`] — a small blocking client for tests and the
//!   `load-driver` benchmark.
//!
//! Binaries: `psi-server` (stand-alone server) and `load-driver`
//! (concurrent-load benchmark writing `BENCH_server.json`; see
//! PROTOCOL.md and ARCHITECTURE.md §Serving).
//!
//! Every failure mode on the wire is a typed error line: engine
//! errors carry [`psi_core::PsiError::wire_code`] (1–9), protocol
//! violations and contained panics use codes 100/101. The server
//! never panics the process on client input — the input-hardening
//! work in `kl0` (bounded parser recursion, bounded list literals)
//! plus `catch_unwind` containment in [`session`] make that a tested
//! guarantee, not an aspiration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod pool;
pub mod protocol;
pub mod quantile;
pub mod server;
pub mod session;

pub use client::{Client, ClientError, SolveReply, WireError};
pub use pool::{Lease, MachinePool, PoolOptions};
pub use protocol::{LimitsPatch, Request, CODE_PROTOCOL, CODE_SESSION_PANIC};
pub use quantile::percentile;
pub use server::{default_caps, serving_config, Server, ServerOptions};
pub use session::{Session, SessionTurn};
