//! Latency-percentile estimation for the serving benchmarks.
//!
//! The estimator itself lives in [`psi_tools::quantile`] so that
//! `psi-bench`'s sweep engine can summarize per-cell wall times with
//! the same type-7 definition without depending on the server crate;
//! this module re-exports it under the historical `psi-server` path.
//! See the `psi_tools` module docs for the two `load-driver` defects
//! (p99-collapses-to-max for n < 100, caller buffer sorted in place)
//! the shared implementation fixes.
//!
//! ```
//! // The historical path keeps working for server consumers.
//! use psi_server::quantile::percentile;
//! assert_eq!(percentile(&[40, 10, 30, 20], 0.5), 25);
//! ```

pub use psi_tools::quantile::percentile;
