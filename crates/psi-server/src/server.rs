//! The TCP front end: listener, per-connection threads, shutdown.
//!
//! The transport is deliberately plain: one OS thread per connection,
//! blocking reads with a short timeout so every thread notices the
//! shutdown flag within half a second, and the line-oriented protocol
//! from [`crate::protocol`] on the wire. All the interesting state
//! lives in [`crate::session`] and [`crate::pool`]; this module only
//! moves bytes and enforces the byte-level input rules (request size
//! cap, UTF-8).

use crate::pool::{MachinePool, PoolOptions};
use crate::protocol::{hello_line, protocol_error_line, MAX_REQUEST_BYTES};
use crate::session::{Session, SessionTurn};
use psi_machine::{MachineConfig, ResourceLimits};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The default serving profile: throughput lane (no cache simulation,
/// predecoded dispatch) with first-argument clause indexing — the
/// fastest configuration that still produces solutions bit-identical
/// to the paper-faithful machine.
pub fn serving_config() -> MachineConfig {
    let mut config = MachineConfig::psi_throughput();
    config.clause_indexing = true;
    config
}

/// The default per-session resource caps: generous enough for every
/// Table 1 program, tight enough that no single session can wedge a
/// worker thread for more than its deadline.
pub fn default_caps() -> ResourceLimits {
    ResourceLimits::unlimited()
        .with_max_steps(2_000_000_000)
        .with_deadline(Duration::from_secs(30))
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Machine configuration for every pooled machine.
    pub config: MachineConfig,
    /// Per-session resource caps ([`crate::protocol::clamp_limits`]).
    pub caps: ResourceLimits,
    /// Warm-pool tuning.
    pub pool: PoolOptions,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            addr: "127.0.0.1:0".to_owned(),
            config: serving_config(),
            caps: default_caps(),
            pool: PoolOptions::default(),
        }
    }
}

/// A running server: accept thread plus one thread per live
/// connection. Dropping the handle shuts the server down and joins
/// every thread.
pub struct Server {
    local_addr: SocketAddr,
    pool: Arc<MachinePool>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `options.addr` and starts accepting connections.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listen address.
    pub fn spawn(options: ServerOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let pool = Arc::new(MachinePool::new(options.config, options.pool));
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_pool = Arc::clone(&pool);
        let accept_shutdown = Arc::clone(&shutdown);
        let caps = options.caps;
        let accept_thread = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !accept_shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let pool = Arc::clone(&accept_pool);
                        let shutdown = Arc::clone(&accept_shutdown);
                        let caps = caps.clone();
                        workers.push(std::thread::spawn(move || {
                            serve_connection(stream, pool, caps, &shutdown);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
                workers.retain(|w| !w.is_finished());
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(Server {
            local_addr,
            pool,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The warm pool behind this server.
    pub fn pool(&self) -> &Arc<MachinePool> {
        &self.pool
    }

    /// Signals shutdown and joins the accept thread (which joins every
    /// connection thread). Connection threads notice within their read
    /// timeout (500 ms).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Read timeout per blocking read: the shutdown-poll granularity.
const READ_POLL: Duration = Duration::from_millis(500);

fn serve_connection(
    stream: TcpStream,
    pool: Arc<MachinePool>,
    caps: ResourceLimits,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    if writer
        .write_all(format!("{}\n", hello_line()).as_bytes())
        .is_err()
    {
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut session = Session::new(pool, caps);
    let mut buf: Vec<u8> = Vec::new();
    let mut responses: Vec<String> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            session.finish();
            return;
        }
        // Bounded read: never buffer more than one cap-sized line,
        // even from a client that sends gigabytes without a newline.
        let mut limited = (&mut reader).take((MAX_REQUEST_BYTES + 2) as u64);
        match limited.read_until(b'\n', &mut buf) {
            Ok(0) => {
                // EOF: the client hung up without `close`. The
                // machine state is still sound, so check it back in.
                session.finish();
                return;
            }
            Ok(_) => {
                if buf.last() != Some(&b'\n') {
                    if buf.len() > MAX_REQUEST_BYTES {
                        // Over the cap with no line end in sight:
                        // hostile or broken client; drop everything.
                        let _ = writer.write_all(
                            format!(
                                "{}\n",
                                protocol_error_line(&format!(
                                    "request exceeds {MAX_REQUEST_BYTES} bytes"
                                ))
                            )
                            .as_bytes(),
                        );
                        return;
                    }
                    // Partial line (timeout sliced it); keep reading.
                    continue;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                session.finish();
                return;
            }
        }
        let line = match std::str::from_utf8(&buf) {
            Ok(s) => s.trim_end_matches(['\n', '\r']).to_owned(),
            Err(_) => {
                let _ = writer.write_all(
                    format!("{}\n", protocol_error_line("request is not UTF-8")).as_bytes(),
                );
                buf.clear();
                continue;
            }
        };
        buf.clear();
        if line.is_empty() {
            continue;
        }
        responses.clear();
        let turn = session.handle_line(&line, &mut responses);
        let mut payload = String::new();
        for r in &responses {
            payload.push_str(r);
            payload.push('\n');
        }
        if writer.write_all(payload.as_bytes()).is_err() {
            // Client gone mid-write; the machine is still sound.
            session.finish();
            return;
        }
        match turn {
            SessionTurn::Continue => {}
            SessionTurn::Close => {
                session.finish();
                return;
            }
            SessionTurn::Abort => {
                // Poisoned (or hostile) session: finish() retires the
                // machine instead of pooling it.
                session.finish();
                return;
            }
        }
    }
}
