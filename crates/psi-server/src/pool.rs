//! The warm machine pool.
//!
//! A consulted [`Machine`] is expensive relative to a short query:
//! parsing, lowering, compiling, seeding the simulated heap, and (on
//! first dispatches) filling the predecode cache. The pool keeps
//! recycled machines shelved **by the exact source text they were
//! consulted with**, so a new session consulting the same program
//! starts on a warm machine — loaded code, predecode entries and
//! clause-index buckets intact — with zero per-run state (the
//! [`Machine::recycle`] contract, regression-tested in
//! `tests/session_reuse.rs`).
//!
//! Two safety rules shape the design:
//!
//! * Reuse requires *string-equal* source, not merely equal hashes —
//!   a machine cannot unload code, so handing it to a session that
//!   consulted anything else would leak one tenant's program into
//!   another's session.
//! * A machine is only pooled after a *clean* session end. A session
//!   that panicked drops its machine on the floor; a possibly
//!   corrupted interpreter state must never be reused.
//!
//! Each checkout/checkin also counts sessions served per machine and
//! retires machines after [`PoolOptions::reuse_cap`] sessions: query
//! compilation appends a small entry stub per solve, so a bounded
//! session count keeps a pooled machine's heap from creeping.

use kl0::Program;
use psi_core::Result;
use psi_machine::{Machine, MachineConfig};
use std::collections::HashMap;
use std::sync::Mutex;

/// Pool tuning knobs.
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Machines kept warm per distinct source (more concurrent
    /// sessions of one program than this fall back to cold loads).
    pub shelf_cap: usize,
    /// Sessions one machine may serve before it is retired instead of
    /// re-pooled.
    pub reuse_cap: u32,
}

impl Default for PoolOptions {
    fn default() -> PoolOptions {
        PoolOptions {
            shelf_cap: 32,
            reuse_cap: 64,
        }
    }
}

struct Shelved {
    machine: Machine,
    sessions_served: u32,
}

/// A machine checked out of (or destined for) the pool.
pub struct Lease {
    /// The machine itself.
    pub machine: Machine,
    /// Exact source text consulted into `machine`, the pool key.
    pub source: String,
    sessions_served: u32,
    /// Whether this lease was served warm from the pool.
    pub warm: bool,
}

/// Thread-safe warm pool of consulted machines, keyed by source text.
pub struct MachinePool {
    config: MachineConfig,
    options: PoolOptions,
    shelves: Mutex<HashMap<String, Vec<Shelved>>>,
}

impl MachinePool {
    /// An empty pool handing out machines with `config`.
    pub fn new(config: MachineConfig, options: PoolOptions) -> MachinePool {
        MachinePool {
            config,
            options,
            shelves: Mutex::new(HashMap::new()),
        }
    }

    /// The machine configuration every lease is created with.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Checks out a machine consulted with exactly `source`: warm from
    /// the shelf when available, otherwise a cold load. Nothing heavy
    /// happens under the pool lock — cold loads compile outside it.
    ///
    /// # Errors
    ///
    /// Typed parse/compile errors from a cold load of `source`.
    pub fn checkout(&self, source: &str) -> Result<Lease> {
        let warm = {
            let mut shelves = self.shelves.lock().unwrap_or_else(|e| e.into_inner());
            shelves.get_mut(source).and_then(Vec::pop)
        };
        if let Some(shelved) = warm {
            return Ok(Lease {
                machine: shelved.machine,
                source: source.to_owned(),
                sessions_served: shelved.sessions_served,
                warm: true,
            });
        }
        let program = Program::parse(source)?;
        let machine = Machine::load(&program, self.config.clone())?;
        Ok(Lease {
            machine,
            source: source.to_owned(),
            sessions_served: 0,
            warm: false,
        })
    }

    /// Returns a lease after a clean session end: the machine is
    /// recycled and shelved for the next session consulting the same
    /// source — unless its shelf is full or it served its
    /// [`PoolOptions::reuse_cap`]'th session, in which case it is
    /// retired (dropped). Never call this for a session that
    /// panicked; drop the lease instead.
    pub fn checkin(&self, mut lease: Lease) {
        lease.sessions_served += 1;
        if lease.sessions_served >= self.options.reuse_cap {
            return;
        }
        lease.machine.recycle();
        let mut shelves = self.shelves.lock().unwrap_or_else(|e| e.into_inner());
        let shelf = shelves.entry(lease.source).or_default();
        if shelf.len() < self.options.shelf_cap {
            shelf.push(Shelved {
                machine: lease.machine,
                sessions_served: lease.sessions_served,
            });
        }
    }

    /// Machines currently shelved (all sources).
    pub fn idle_count(&self) -> usize {
        let shelves = self.shelves.lock().unwrap_or_else(|e| e.into_inner());
        shelves.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> MachinePool {
        let mut config = MachineConfig::psi_throughput();
        config.clause_indexing = true;
        MachinePool::new(config, PoolOptions::default())
    }

    #[test]
    fn checkout_checkin_reuses_the_same_source_only() {
        let pool = pool();
        let lease = pool.checkout("p(1). p(2).").unwrap();
        assert!(!lease.warm);
        pool.checkin(lease);
        assert_eq!(pool.idle_count(), 1);
        // Same source: warm.
        let lease = pool.checkout("p(1). p(2).").unwrap();
        assert!(lease.warm);
        pool.checkin(lease);
        // Different source (even a whitespace difference): cold.
        let lease = pool.checkout("p(1).  p(2).").unwrap();
        assert!(!lease.warm);
        drop(lease);
    }

    #[test]
    fn warm_machines_solve_like_fresh_ones() {
        let pool = pool();
        let mut lease = pool.checkout("q(a). q(b).").unwrap();
        let first = lease.machine.solve("q(X)", 9).unwrap();
        pool.checkin(lease);
        let mut lease = pool.checkout("q(a). q(b).").unwrap();
        assert!(lease.warm);
        let second = lease.machine.solve("q(X)", 9).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            lease.machine.stats().steps,
            {
                let mut fresh = pool.checkout("q(a). q(b).").unwrap();
                fresh.machine.solve("q(X)", 9).unwrap();
                fresh.machine.stats().steps
            },
            "warm solve must cost the same simulated steps as a fresh one"
        );
    }

    #[test]
    fn reuse_cap_retires_machines() {
        let pool = MachinePool::new(
            MachineConfig::psi_throughput(),
            PoolOptions {
                shelf_cap: 8,
                reuse_cap: 2,
            },
        );
        let lease = pool.checkout("r(1).").unwrap();
        pool.checkin(lease); // served 1 → shelved
        assert_eq!(pool.idle_count(), 1);
        let lease = pool.checkout("r(1).").unwrap();
        assert!(lease.warm);
        pool.checkin(lease); // served 2 → retired
        assert_eq!(pool.idle_count(), 0);
    }

    #[test]
    fn malformed_source_is_a_typed_error() {
        let pool = pool();
        assert!(pool.checkout("p(").is_err());
    }
}
