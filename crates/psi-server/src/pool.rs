//! The warm machine pool.
//!
//! A consulted [`Machine`] is expensive relative to a short query:
//! parsing, lowering, compiling, seeding the simulated heap, and (on
//! first dispatches) filling the predecode cache. The pool keeps
//! recycled machines shelved **by the exact source text they were
//! consulted with**, so a new session consulting the same program
//! starts on a warm machine — loaded code, predecode entries and
//! clause-index buckets intact — with zero per-run state (the
//! [`Machine::recycle`] contract, regression-tested in
//! `tests/session_reuse.rs`).
//!
//! Shelf *misses* no longer pay a full compile either: the first cold
//! load of each source is kept as a consulted, never-run **template**,
//! and later misses are served by [`Machine::fork`] — the compiled
//! image, predecode cache and clause index are shared behind `Arc`,
//! only the run state is fresh. Because a template has never executed
//! a query, a forked lease carries no other session's history and no
//! recycle hazard at all; forking is also immune to the heap-creep
//! retirement that bounds shelved machines. Fork-vs-fresh
//! bit-identity is regression-tested over the whole Table 1 suite in
//! `tests/fork.rs`.
//!
//! Three safety rules shape the design:
//!
//! * Reuse requires *string-equal* source, not merely equal hashes —
//!   a machine cannot unload code, so handing it to a session that
//!   consulted anything else would leak one tenant's program into
//!   another's session. A session that consults incrementally extends
//!   its lease key with each consulted text, so the composite key
//!   `A + B` never collides with plain `A`.
//! * A machine is only pooled after a *clean* session end. A session
//!   that panicked drops its machine on the floor, and a session
//!   whose incremental consult failed partway [taints](Lease::taint)
//!   its lease (the machine may hold a partially-compiled program
//!   that its pool key does not describe); tainted leases are retired
//!   at check-in.
//! * Templates are never run and never handed out directly — every
//!   lease is a fork, a shelved recycle, or a cold load.
//!
//! Each checkout/checkin also counts sessions served per machine and
//! retires machines after [`PoolOptions::reuse_cap`] sessions: query
//! compilation appends a small entry stub per solve, so a bounded
//! session count keeps a pooled machine's heap from creeping.

use kl0::Program;
use psi_core::Result;
use psi_machine::{Machine, MachineConfig};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Pool tuning knobs.
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Machines kept warm per distinct source (more concurrent
    /// sessions of one program than this fall back to template
    /// forks).
    pub shelf_cap: usize,
    /// Sessions one machine may serve before it is retired instead of
    /// re-pooled.
    pub reuse_cap: u32,
    /// Distinct sources whose consulted templates are retained for
    /// fork-serving. Beyond this many sources, misses on new sources
    /// fall back to handing out the cold load itself.
    pub template_cap: usize,
}

impl Default for PoolOptions {
    fn default() -> PoolOptions {
        PoolOptions {
            shelf_cap: 32,
            reuse_cap: 64,
            template_cap: 64,
        }
    }
}

struct Shelved {
    machine: Machine,
    sessions_served: u32,
}

/// A machine checked out of (or destined for) the pool.
pub struct Lease {
    /// The machine itself.
    pub machine: Machine,
    /// Exact source text consulted into `machine`, the pool key.
    pub source: String,
    sessions_served: u32,
    /// Whether this lease was served warm from the pool.
    pub warm: bool,
    /// Whether this lease was forked from a consulted template
    /// (shelf miss served without a compile).
    pub forked: bool,
    tainted: bool,
}

impl Lease {
    /// Marks the machine as no longer described by its pool key — for
    /// example after an incremental consult failed partway, leaving a
    /// partially-compiled program loaded. A tainted lease still
    /// serves its own session but is retired at
    /// [`MachinePool::checkin`] instead of shelved.
    pub fn taint(&mut self) {
        self.tainted = true;
    }

    /// Whether [`Lease::taint`] has been called.
    pub fn is_tainted(&self) -> bool {
        self.tainted
    }
}

/// Thread-safe warm pool of consulted machines, keyed by source text.
pub struct MachinePool {
    config: MachineConfig,
    options: PoolOptions,
    shelves: Mutex<HashMap<String, Vec<Shelved>>>,
    templates: Mutex<HashMap<String, Arc<Machine>>>,
}

impl MachinePool {
    /// An empty pool handing out machines with `config`.
    pub fn new(config: MachineConfig, options: PoolOptions) -> MachinePool {
        MachinePool {
            config,
            options,
            shelves: Mutex::new(HashMap::new()),
            templates: Mutex::new(HashMap::new()),
        }
    }

    /// The machine configuration every lease is created with.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Checks out a machine consulted with exactly `source`: warm from
    /// the shelf when available, else a cheap fork of the source's
    /// consulted template, else a cold load (which seeds the
    /// template). Nothing heavy happens under a pool lock — compiles
    /// and forks run outside it.
    ///
    /// # Errors
    ///
    /// Typed parse/compile errors from a cold load of `source`.
    pub fn checkout(&self, source: &str) -> Result<Lease> {
        let warm = {
            let mut shelves = self.shelves.lock().unwrap_or_else(|e| e.into_inner());
            shelves.get_mut(source).and_then(Vec::pop)
        };
        if let Some(shelved) = warm {
            return Ok(Lease {
                machine: shelved.machine,
                source: source.to_owned(),
                sessions_served: shelved.sessions_served,
                warm: true,
                forked: false,
                tainted: false,
            });
        }
        let template = {
            let templates = self.templates.lock().unwrap_or_else(|e| e.into_inner());
            templates.get(source).cloned()
        };
        if let Some(template) = template {
            // Templates are consulted and never run, so fork cannot
            // fail; shared-image forking makes the miss path cheap.
            let machine = template.fork()?;
            return Ok(Lease {
                machine,
                source: source.to_owned(),
                sessions_served: 0,
                warm: false,
                forked: true,
                tainted: false,
            });
        }
        let program = Program::parse(source)?;
        let machine = Machine::load(&program, self.config.clone())?;
        let machine = self.seed_template(source, machine)?;
        Ok(Lease {
            machine,
            source: source.to_owned(),
            sessions_served: 0,
            warm: false,
            forked: false,
            tainted: false,
        })
    }

    /// Consults `source` into a template without handing out a lease,
    /// so the first real checkout of that source is already a fork.
    ///
    /// # Errors
    ///
    /// Typed parse/compile errors from loading `source`.
    pub fn preload(&self, source: &str) -> Result<()> {
        {
            let templates = self.templates.lock().unwrap_or_else(|e| e.into_inner());
            if templates.contains_key(source) {
                return Ok(());
            }
        }
        let program = Program::parse(source)?;
        let machine = Machine::load(&program, self.config.clone())?;
        self.seed_template(source, machine)?;
        Ok(())
    }

    /// Retains `machine` as the template for `source` (capacity
    /// permitting) and returns a machine to hand out: a fork of the
    /// retained template, or `machine` itself when the template map is
    /// full or another thread seeded the source first.
    fn seed_template(&self, source: &str, machine: Machine) -> Result<Machine> {
        let mut templates = self.templates.lock().unwrap_or_else(|e| e.into_inner());
        if templates.contains_key(source) || templates.len() >= self.options.template_cap {
            return Ok(machine);
        }
        let template = Arc::new(machine);
        templates.insert(source.to_owned(), Arc::clone(&template));
        drop(templates);
        template.fork()
    }

    /// Returns a lease after a clean session end: the machine is
    /// recycled and shelved for the next session consulting the same
    /// source — unless its shelf is full, it served its
    /// [`PoolOptions::reuse_cap`]'th session, or the lease was
    /// [tainted](Lease::taint), in which case it is retired (dropped).
    /// Never call this for a session that panicked; drop the lease
    /// instead.
    pub fn checkin(&self, mut lease: Lease) {
        lease.sessions_served += 1;
        if lease.tainted || lease.sessions_served >= self.options.reuse_cap {
            return;
        }
        lease.machine.recycle();
        let mut shelves = self.shelves.lock().unwrap_or_else(|e| e.into_inner());
        let shelf = shelves.entry(lease.source).or_default();
        if shelf.len() < self.options.shelf_cap {
            shelf.push(Shelved {
                machine: lease.machine,
                sessions_served: lease.sessions_served,
            });
        }
    }

    /// Machines currently shelved (all sources).
    pub fn idle_count(&self) -> usize {
        let shelves = self.shelves.lock().unwrap_or_else(|e| e.into_inner());
        shelves.values().map(Vec::len).sum()
    }

    /// Consulted templates currently retained for fork-serving.
    pub fn template_count(&self) -> usize {
        let templates = self.templates.lock().unwrap_or_else(|e| e.into_inner());
        templates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> MachinePool {
        let mut config = MachineConfig::psi_throughput();
        config.clause_indexing = true;
        MachinePool::new(config, PoolOptions::default())
    }

    #[test]
    fn checkout_checkin_reuses_the_same_source_only() {
        let pool = pool();
        let lease = pool.checkout("p(1). p(2).").unwrap();
        assert!(!lease.warm);
        pool.checkin(lease);
        assert_eq!(pool.idle_count(), 1);
        // Same source: warm.
        let lease = pool.checkout("p(1). p(2).").unwrap();
        assert!(lease.warm);
        pool.checkin(lease);
        // Different source (even a whitespace difference): cold.
        let lease = pool.checkout("p(1).  p(2).").unwrap();
        assert!(!lease.warm);
        drop(lease);
    }

    #[test]
    fn shelf_misses_fork_the_template_instead_of_recompiling() {
        let pool = pool();
        // First checkout of a source compiles once and seeds the
        // template.
        let a = pool.checkout("t(1). t(2).").unwrap();
        assert!(!a.warm);
        assert_eq!(pool.template_count(), 1);
        // Concurrent second session on the same source: the shelf is
        // empty (the first lease is still out), so this is a fork.
        let mut b = pool.checkout("t(1). t(2).").unwrap();
        assert!(!b.warm);
        assert!(b.forked);
        assert_eq!(b.machine.solve("t(X)", 9).unwrap().len(), 2);
        drop(a);
        drop(b);
    }

    #[test]
    fn forked_leases_solve_bit_identically_to_cold_loads() {
        let pool = pool();
        let mut cold = pool.checkout("f(a). f(b). g(X) :- f(X).").unwrap();
        let mut fork = pool.checkout("f(a). f(b). g(X) :- f(X).").unwrap();
        assert!(fork.forked);
        let cold_solutions = cold.machine.solve("g(X)", 9).unwrap();
        let fork_solutions = fork.machine.solve("g(X)", 9).unwrap();
        assert_eq!(cold_solutions, fork_solutions);
        assert_eq!(cold.machine.stats(), fork.machine.stats());
    }

    #[test]
    fn warm_machines_solve_like_fresh_ones() {
        let pool = pool();
        let mut lease = pool.checkout("q(a). q(b).").unwrap();
        let first = lease.machine.solve("q(X)", 9).unwrap();
        pool.checkin(lease);
        let mut lease = pool.checkout("q(a). q(b).").unwrap();
        assert!(lease.warm);
        let second = lease.machine.solve("q(X)", 9).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            lease.machine.stats().steps,
            {
                let mut fresh = pool.checkout("q(a). q(b).").unwrap();
                fresh.machine.solve("q(X)", 9).unwrap();
                fresh.machine.stats().steps
            },
            "warm solve must cost the same simulated steps as a fresh one"
        );
    }

    #[test]
    fn reuse_cap_retires_machines() {
        let pool = MachinePool::new(
            MachineConfig::psi_throughput(),
            PoolOptions {
                shelf_cap: 8,
                reuse_cap: 2,
                template_cap: 8,
            },
        );
        let lease = pool.checkout("r(1).").unwrap();
        pool.checkin(lease); // served 1 → shelved
        assert_eq!(pool.idle_count(), 1);
        let lease = pool.checkout("r(1).").unwrap();
        assert!(lease.warm);
        pool.checkin(lease); // served 2 → retired
        assert_eq!(pool.idle_count(), 0);
    }

    #[test]
    fn tainted_leases_are_retired_not_shelved() {
        let pool = pool();
        let mut lease = pool.checkout("w(1).").unwrap();
        lease.taint();
        assert!(lease.is_tainted());
        pool.checkin(lease);
        assert_eq!(
            pool.idle_count(),
            0,
            "tainted machines must never be shelved"
        );
        // The next checkout of the same source is a template fork, not
        // the tainted machine.
        let lease = pool.checkout("w(1).").unwrap();
        assert!(!lease.warm);
        assert!(lease.forked);
    }

    #[test]
    fn template_cap_bounds_retained_sources() {
        let pool = MachinePool::new(
            MachineConfig::psi_throughput(),
            PoolOptions {
                shelf_cap: 8,
                reuse_cap: 64,
                template_cap: 2,
            },
        );
        let a = pool.checkout("a(1).").unwrap();
        let b = pool.checkout("b(1).").unwrap();
        let mut c = pool.checkout("c(1).").unwrap();
        assert_eq!(
            pool.template_count(),
            2,
            "third source must not be retained"
        );
        assert!(!c.forked, "over-cap miss hands out the cold load itself");
        assert_eq!(c.machine.solve("c(X)", 9).unwrap().len(), 1);
        drop((a, b, c));
    }

    #[test]
    fn preload_makes_the_first_checkout_a_fork() {
        let pool = pool();
        pool.preload("pre(1). pre(2).").unwrap();
        assert_eq!(pool.template_count(), 1);
        pool.preload("pre(1). pre(2).").unwrap(); // idempotent
        assert_eq!(pool.template_count(), 1);
        let mut lease = pool.checkout("pre(1). pre(2).").unwrap();
        assert!(lease.forked);
        assert_eq!(lease.machine.solve("pre(X)", 9).unwrap().len(), 2);
        assert!(pool.preload("broken(").is_err());
    }

    #[test]
    fn malformed_source_is_a_typed_error() {
        let pool = pool();
        assert!(pool.checkout("p(").is_err());
    }
}
