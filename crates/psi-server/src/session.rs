//! The per-connection session state machine.
//!
//! A [`Session`] is transport-agnostic: the server hands it one
//! request line at a time and writes back whatever response lines it
//! produces, so the whole protocol surface is unit-testable without a
//! socket. The state it carries is exactly one pooled machine lease
//! (created lazily on the first request that needs a machine) plus
//! the session's effective resource limits.
//!
//! # Fault containment
//!
//! Every call into the interpreter (`consult`, `solve`) runs under
//! [`std::panic::catch_unwind`]. Engine errors ([`psi_core::PsiError`])
//! are the *expected* outcome of hostile programs and are answered
//! with a typed error line, after which the session keeps serving —
//! the machine's documented contract is that it stays usable after a
//! `ResourceExhausted` or any other typed error. A *panic*, by
//! contrast, means the interpreter's state can no longer be trusted:
//! the session answers one [`crate::protocol::CODE_SESSION_PANIC`] error line, the
//! lease is dropped on the floor (never pooled again), and the
//! connection is closed. Other sessions — including ones holding
//! machines warmed by the same source — are unaffected.

use crate::pool::{Lease, MachinePool};
use crate::protocol::{
    ack_line, clamp_limits, done_line, error_line, panic_error_line, parse_request,
    protocol_error_line, solution_line, stats_line, Request, MAX_REQUEST_BYTES,
};
use psi_machine::ResourceLimits;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// What the transport should do after a handled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionTurn {
    /// Keep reading requests.
    Continue,
    /// The client closed cleanly; check the machine back in and drop
    /// the connection.
    Close,
    /// The session is no longer trustworthy (machine panic, oversized
    /// or undecodable input): drop the connection *and* the machine.
    Abort,
}

/// One client's session: a lazily checked-out machine lease plus the
/// session's clamped resource limits.
pub struct Session {
    pool: Arc<MachinePool>,
    caps: ResourceLimits,
    limits: ResourceLimits,
    lease: Option<Lease>,
    poisoned: bool,
}

impl Session {
    /// A fresh session drawing machines from `pool`, with every budget
    /// at the server cap `caps` until the client tightens it.
    pub fn new(pool: Arc<MachinePool>, caps: ResourceLimits) -> Session {
        Session {
            pool,
            limits: caps.clone(),
            caps,
            lease: None,
            poisoned: false,
        }
    }

    /// Handles one request line, pushing response lines onto `out`.
    pub fn handle_line(&mut self, line: &str, out: &mut Vec<String>) -> SessionTurn {
        if line.len() > MAX_REQUEST_BYTES {
            out.push(protocol_error_line(&format!(
                "request exceeds {MAX_REQUEST_BYTES} bytes"
            )));
            return SessionTurn::Abort;
        }
        let request = match parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                out.push(protocol_error_line(&e.to_string()));
                return SessionTurn::Continue;
            }
        };
        match request {
            Request::Consult { src } => self.consult(&src, out),
            Request::Solve { goal, max } => self.solve(&goal, max, out),
            Request::Limits(patch) => {
                self.limits = clamp_limits(&patch, &self.caps);
                if let Some(lease) = &mut self.lease {
                    lease.machine.set_limits(self.limits.clone());
                }
                out.push(ack_line("limits"));
                SessionTurn::Continue
            }
            Request::Stats => match self.lease_mut(out) {
                Some(lease) => {
                    out.push(stats_line(&lease.machine.stats()));
                    SessionTurn::Continue
                }
                None => SessionTurn::Continue,
            },
            Request::Reset => {
                if let Some(lease) = &mut self.lease {
                    lease.machine.recycle();
                }
                out.push(ack_line("reset"));
                SessionTurn::Continue
            }
            Request::Close => {
                out.push(ack_line("bye"));
                SessionTurn::Close
            }
        }
    }

    /// Ends the session. A clean end returns the machine to the pool;
    /// a poisoned session (panic, hostile input) retires it.
    pub fn finish(mut self) {
        if let Some(lease) = self.lease.take() {
            if !self.poisoned {
                self.pool.checkin(lease);
            }
        }
    }

    /// The session's machine, checked out on first use. The empty
    /// source is a valid pool key: a session that solves before
    /// consulting gets an empty (but fully governed) machine, and its
    /// goals fail with a typed `undefined_predicate` error.
    fn lease_mut(&mut self, out: &mut Vec<String>) -> Option<&mut Lease> {
        if self.lease.is_none() {
            match self.pool.checkout("") {
                Ok(mut lease) => {
                    lease.machine.set_limits(self.limits.clone());
                    self.lease = Some(lease);
                }
                Err(e) => {
                    out.push(error_line(&e));
                    return None;
                }
            }
        }
        self.lease.as_mut()
    }

    fn consult(&mut self, src: &str, out: &mut Vec<String>) -> SessionTurn {
        // First consult of a fresh session: check out by source, so
        // identical programs land on warm machines.
        if self.lease.is_none() {
            match self.pool.checkout(src) {
                Ok(mut lease) => {
                    lease.machine.set_limits(self.limits.clone());
                    self.lease = Some(lease);
                    out.push(ack_line("consulted"));
                }
                Err(e) => out.push(error_line(&e)),
            }
            return SessionTurn::Continue;
        }
        // Incremental consult: append to the machine and extend the
        // pool key, so the machine is only ever reused by a session
        // that consulted the same sequence of texts.
        let Some(lease) = self.lease.as_mut() else {
            return SessionTurn::Continue;
        };
        let result = catch_unwind(AssertUnwindSafe(|| lease.machine.consult(src)));
        match result {
            Ok(Ok(())) => {
                lease.source.push('\n');
                lease.source.push_str(src);
                out.push(ack_line("consulted"));
                SessionTurn::Continue
            }
            Ok(Err(e)) => {
                // A failed consult can leave the program partially
                // compiled (the compiler registers predicate entries
                // before it compiles clause bodies), and the pool key
                // was not extended — so the machine no longer matches
                // its key. It keeps serving *this* session, but must
                // never be shelved for another tenant.
                lease.taint();
                out.push(error_line(&e));
                SessionTurn::Continue
            }
            Err(panic) => self.poison(panic, out),
        }
    }

    fn solve(&mut self, goal: &str, max: u64, out: &mut Vec<String>) -> SessionTurn {
        let Some(lease) = self.lease_mut(out) else {
            return SessionTurn::Continue;
        };
        let max = usize::try_from(max).unwrap_or(usize::MAX);
        let result = catch_unwind(AssertUnwindSafe(|| lease.machine.solve(goal, max)));
        match result {
            Ok(Ok(solutions)) => {
                for (i, s) in solutions.iter().enumerate() {
                    out.push(solution_line(i as u64, s));
                }
                out.push(done_line(solutions.len() as u64, &lease.machine.stats()));
                SessionTurn::Continue
            }
            Ok(Err(e)) => {
                out.push(error_line(&e));
                SessionTurn::Continue
            }
            Err(panic) => self.poison(panic, out),
        }
    }

    #[cold]
    fn poison(
        &mut self,
        panic: Box<dyn std::any::Any + Send>,
        out: &mut Vec<String>,
    ) -> SessionTurn {
        let message = if let Some(s) = panic.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = panic.downcast_ref::<String>() {
            s.clone()
        } else {
            "machine panicked".to_owned()
        };
        self.poisoned = true;
        out.push(panic_error_line(&message));
        SessionTurn::Abort
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolOptions;
    use crate::protocol::{CODE_PROTOCOL, CODE_SESSION_PANIC};
    use psi_machine::MachineConfig;
    use psi_tools::json::parse_object;

    fn session() -> Session {
        let mut config = MachineConfig::psi_throughput();
        config.clause_indexing = true;
        let pool = Arc::new(MachinePool::new(config, PoolOptions::default()));
        Session::new(pool, ResourceLimits::unlimited())
    }

    fn one(session: &mut Session, line: &str) -> (Vec<String>, SessionTurn) {
        let mut out = Vec::new();
        let turn = session.handle_line(line, &mut out);
        (out, turn)
    }

    #[test]
    fn consult_solve_close_round_trip() {
        let mut s = session();
        let (out, turn) = one(&mut s, r#"{"cmd":"consult","src":"p(1). p(2)."}"#);
        assert_eq!(turn, SessionTurn::Continue);
        assert_eq!(
            parse_object(&out[0]).unwrap().str_field("event").unwrap(),
            "consulted"
        );
        let (out, turn) = one(&mut s, r#"{"cmd":"solve","goal":"p(X)","max":9}"#);
        assert_eq!(turn, SessionTurn::Continue);
        assert_eq!(out.len(), 3, "two solutions + done: {out:?}");
        let first = parse_object(&out[0]).unwrap();
        assert_eq!(first.str_field("event").unwrap(), "solution");
        assert_eq!(first.str_field("bindings").unwrap(), "X = 1");
        let done = parse_object(&out[2]).unwrap();
        assert_eq!(done.u64_field("solutions").unwrap(), 2);
        assert!(done.u64_field("steps").unwrap() > 0);
        let (out, turn) = one(&mut s, r#"{"cmd":"close"}"#);
        assert_eq!(turn, SessionTurn::Close);
        assert_eq!(
            parse_object(&out[0]).unwrap().str_field("event").unwrap(),
            "bye"
        );
        s.finish();
    }

    #[test]
    fn malformed_lines_get_code_100_and_the_session_survives() {
        let mut s = session();
        for line in ["", "garbage", "{\"cmd\":\"zorp\"}", "{\"cmd\":17}"] {
            let (out, turn) = one(&mut s, line);
            assert_eq!(turn, SessionTurn::Continue, "{line:?}");
            let obj = parse_object(&out[0]).unwrap();
            assert_eq!(obj.u64_field("code").unwrap(), CODE_PROTOCOL, "{line:?}");
        }
        // Still fully functional afterwards.
        let (_, turn) = one(&mut s, r#"{"cmd":"consult","src":"q(a)."}"#);
        assert_eq!(turn, SessionTurn::Continue);
        let (out, _) = one(&mut s, r#"{"cmd":"solve","goal":"q(X)"}"#);
        assert_eq!(
            parse_object(&out[0])
                .unwrap()
                .str_field("bindings")
                .unwrap(),
            "X = a"
        );
    }

    #[test]
    fn solve_before_consult_is_a_typed_engine_error() {
        let mut s = session();
        let (out, turn) = one(&mut s, r#"{"cmd":"solve","goal":"nothing_here(X)"}"#);
        assert_eq!(turn, SessionTurn::Continue);
        let obj = parse_object(&out[0]).unwrap();
        assert_eq!(obj.str_field("kind").unwrap(), "undefined_predicate");
    }

    #[test]
    fn hostile_program_text_is_a_typed_error_not_a_crash() {
        let mut s = session();
        let deep = format!("p :- {}q{}.", "\\+ (".repeat(50_000), ")".repeat(50_000));
        let line = psi_tools::json::ObjectBuilder::new()
            .str("cmd", "consult")
            .str("src", &deep)
            .finish();
        let (out, turn) = one(&mut s, &line);
        assert_eq!(turn, SessionTurn::Continue);
        let obj = parse_object(&out[0]).unwrap();
        assert_eq!(obj.str_field("kind").unwrap(), "syntax");
        // The session still works.
        let (_, turn) = one(&mut s, r#"{"cmd":"consult","src":"ok(1)."}"#);
        assert_eq!(turn, SessionTurn::Continue);
        let (out, _) = one(&mut s, r#"{"cmd":"solve","goal":"ok(X)"}"#);
        assert_eq!(
            parse_object(&out[0])
                .unwrap()
                .str_field("bindings")
                .unwrap(),
            "X = 1"
        );
    }

    #[test]
    fn oversized_lines_abort_the_session() {
        let mut s = session();
        let big = format!(
            r#"{{"cmd":"consult","src":"{}"}}"#,
            "a".repeat(MAX_REQUEST_BYTES)
        );
        let (out, turn) = one(&mut s, &big);
        assert_eq!(turn, SessionTurn::Abort);
        let obj = parse_object(&out[0]).unwrap();
        assert_eq!(obj.u64_field("code").unwrap(), CODE_PROTOCOL);
    }

    #[test]
    fn limits_clamp_and_apply_to_the_next_solve() {
        let mut config = MachineConfig::psi_throughput();
        config.clause_indexing = true;
        let pool = Arc::new(MachinePool::new(config, PoolOptions::default()));
        let caps = ResourceLimits::unlimited().with_max_steps(1_000_000);
        let mut s = Session::new(pool, caps);
        let (_, _) = one(
            &mut s,
            r#"{"cmd":"consult","src":"nat(z). nat(s(X)) :- nat(X)."}"#,
        );
        let (_, turn) = one(&mut s, r#"{"cmd":"limits","max_steps":500}"#);
        assert_eq!(turn, SessionTurn::Continue);
        let (out, turn) = one(&mut s, r#"{"cmd":"solve","goal":"nat(X)","max":100000}"#);
        assert_eq!(
            turn,
            SessionTurn::Continue,
            "exhaustion is typed, not fatal"
        );
        let last = parse_object(out.last().unwrap()).unwrap();
        assert_eq!(last.str_field("kind").unwrap(), "resource_exhausted");
        assert_eq!(last.u64_field("code").unwrap(), 6);
        // And the session keeps serving within the budget.
        let (out, _) = one(&mut s, r#"{"cmd":"solve","goal":"nat(z)","max":1}"#);
        let done = parse_object(out.last().unwrap()).unwrap();
        assert_eq!(done.str_field("event").unwrap(), "done");
    }

    #[test]
    fn clean_finish_pools_the_machine_poisoned_finish_retires_it() {
        let mut config = MachineConfig::psi_throughput();
        config.clause_indexing = true;
        let pool = Arc::new(MachinePool::new(config, PoolOptions::default()));
        let mut s = Session::new(Arc::clone(&pool), ResourceLimits::unlimited());
        let (_, _) = one(&mut s, r#"{"cmd":"consult","src":"p(1)."}"#);
        let (_, turn) = one(&mut s, r#"{"cmd":"close"}"#);
        assert_eq!(turn, SessionTurn::Close);
        s.finish();
        assert_eq!(pool.idle_count(), 1);

        let mut s = Session::new(Arc::clone(&pool), ResourceLimits::unlimited());
        let (_, _) = one(&mut s, r#"{"cmd":"consult","src":"p(1)."}"#);
        s.poisoned = true; // what a contained panic sets
        s.finish();
        assert_eq!(
            pool.idle_count(),
            0,
            "poisoned machines are never re-pooled"
        );
    }

    /// Two-tenant isolation across incremental consults: a machine
    /// that consulted `A` then `B` is pooled under the composite key
    /// `A + "\n" + B`, so a later tenant consulting plain `A` must
    /// never see `B`'s predicates.
    #[test]
    fn incremental_consult_pools_under_the_composite_key_only() {
        let mut config = MachineConfig::psi_throughput();
        config.clause_indexing = true;
        let pool = Arc::new(MachinePool::new(config, PoolOptions::default()));

        // Tenant 1: consult A, then incrementally consult B, end clean.
        let mut s = Session::new(Arc::clone(&pool), ResourceLimits::unlimited());
        let (_, _) = one(&mut s, r#"{"cmd":"consult","src":"a(1)."}"#);
        let (out, turn) = one(&mut s, r#"{"cmd":"consult","src":"b(2)."}"#);
        assert_eq!(turn, SessionTurn::Continue);
        assert_eq!(
            parse_object(&out[0]).unwrap().str_field("event").unwrap(),
            "consulted"
        );
        s.finish();
        assert_eq!(pool.idle_count(), 1);

        // Tenant 2: consults plain A. The composite machine must not
        // be handed over; b/1 must be undefined here.
        let mut s = Session::new(Arc::clone(&pool), ResourceLimits::unlimited());
        let (_, _) = one(&mut s, r#"{"cmd":"consult","src":"a(1)."}"#);
        let (out, _) = one(&mut s, r#"{"cmd":"solve","goal":"b(X)"}"#);
        assert_eq!(
            parse_object(&out[0]).unwrap().str_field("kind").unwrap(),
            "undefined_predicate",
            "tenant 2 saw tenant 1's incremental consult: {out:?}"
        );
        s.finish();

        // The composite key, by contrast, is served warm.
        let lease = pool.checkout("a(1).\nb(2).").unwrap();
        assert!(lease.warm, "composite-key machine should be shelved");
        drop(lease);
    }

    /// A failed incremental consult may leave the program partially
    /// compiled while the pool key stays unextended; that machine must
    /// be retired at session end, never shelved for another tenant.
    #[test]
    fn failed_incremental_consult_retires_the_machine() {
        let mut config = MachineConfig::psi_throughput();
        config.clause_indexing = true;
        let pool = Arc::new(MachinePool::new(config, PoolOptions::default()));

        let mut s = Session::new(Arc::clone(&pool), ResourceLimits::unlimited());
        let (_, _) = one(&mut s, r#"{"cmd":"consult","src":"a(1)."}"#);
        let (out, turn) = one(&mut s, r#"{"cmd":"consult","src":"broken("}"#);
        assert_eq!(turn, SessionTurn::Continue, "typed error, session survives");
        assert_eq!(
            parse_object(&out[0]).unwrap().str_field("kind").unwrap(),
            "syntax"
        );
        // The session itself keeps serving its own (possibly partial)
        // program...
        let (out, _) = one(&mut s, r#"{"cmd":"solve","goal":"a(X)"}"#);
        assert_eq!(
            parse_object(&out[0])
                .unwrap()
                .str_field("bindings")
                .unwrap(),
            "X = 1"
        );
        s.finish();
        // ...but the machine is retired, not shelved under "a(1).".
        assert_eq!(
            pool.idle_count(),
            0,
            "a machine whose consult failed partway must not be re-pooled"
        );
    }

    #[test]
    fn panic_maps_to_code_101() {
        let mut s = session();
        let mut out = Vec::new();
        let turn = s.poison(Box::new("boom".to_owned()), &mut out);
        assert_eq!(turn, SessionTurn::Abort);
        let obj = parse_object(&out[0]).unwrap();
        assert_eq!(obj.u64_field("code").unwrap(), CODE_SESSION_PANIC);
        assert_eq!(obj.str_field("message").unwrap(), "boom");
        s.finish();
    }
}
