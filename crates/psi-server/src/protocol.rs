//! The JSON-lines wire protocol: typed requests, response rendering,
//! and the stable error-code space. PROTOCOL.md at the repository
//! root is the client-facing description of this module.
//!
//! Every request and response is one flat JSON object per line,
//! encoded and decoded with the shared [`psi_tools::json`] codec.
//! Engine errors carry the stable [`PsiError::wire_code`]; the two
//! server-level conditions that have no engine error take codes from
//! 100 up ([`CODE_PROTOCOL`], [`CODE_SESSION_PANIC`]), so the two
//! spaces can never collide.

use psi_core::PsiError;
use psi_machine::{MachineStats, ResourceLimits, Solution};
use psi_tools::json::{JsonObject, ObjectBuilder};
use std::time::Duration;

/// Protocol version, sent in the greeting.
pub const WIRE_PROTOCOL_VERSION: u64 = 1;

/// Wire code for a malformed request (bad JSON, unknown `cmd`,
/// missing field, oversized line). Engine errors use
/// [`PsiError::wire_code`] (1–9); server-level codes start at 100.
pub const CODE_PROTOCOL: u64 = 100;

/// Wire code for a contained panic inside the session's machine. The
/// machine is discarded (never pooled again) and the session is
/// closed; other sessions are unaffected.
pub const CODE_SESSION_PANIC: u64 = 101;

/// Hard cap on one request line, in bytes. A line longer than this is
/// answered with [`CODE_PROTOCOL`] and the connection is closed
/// (the client is either broken or hostile).
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Add clauses to the session's machine (incremental consult).
    Consult {
        /// KL0 program text.
        src: String,
    },
    /// Solve a goal, streaming up to `max` solutions.
    Solve {
        /// KL0 goal text.
        goal: String,
        /// Maximum number of solutions to stream.
        max: u64,
    },
    /// Tighten the session's resource budgets (server caps still
    /// apply — see [`clamp_limits`]).
    Limits(LimitsPatch),
    /// Report the statistics of the session's most recent solve.
    Stats,
    /// Recycle the session's machine state (keeps consulted code).
    Reset,
    /// End the session cleanly.
    Close,
}

/// The optional budget fields of a `limits` request. Absent fields
/// leave the corresponding budget at the server default.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LimitsPatch {
    /// Requested step budget.
    pub max_steps: Option<u64>,
    /// Requested wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Requested heap budget in words.
    pub max_heap_words: Option<u64>,
    /// Requested local-stack budget in words.
    pub max_local_words: Option<u64>,
    /// Requested global-stack budget in words.
    pub max_global_words: Option<u64>,
    /// Requested control-stack budget in words.
    pub max_control_words: Option<u64>,
    /// Requested trail budget in words.
    pub max_trail_words: Option<u64>,
}

fn protocol_err(detail: impl Into<String>) -> PsiError {
    PsiError::Syntax {
        line: 1,
        column: 1,
        detail: detail.into(),
    }
}

fn opt_u64(obj: &JsonObject, key: &str) -> Result<Option<u64>, PsiError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| protocol_err(format!("field \"{key}\" must be a non-negative integer"))),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// A typed [`PsiError::Syntax`] describing what is malformed; the
/// session layer maps every parse failure onto [`CODE_PROTOCOL`].
pub fn parse_request(line: &str) -> Result<Request, PsiError> {
    let obj = psi_tools::json::parse_object(line)?;
    let cmd = obj.str_field("cmd")?;
    match cmd {
        "consult" => Ok(Request::Consult {
            src: obj.str_field("src")?.to_owned(),
        }),
        "solve" => {
            let goal = obj.str_field("goal")?.to_owned();
            let max = opt_u64(&obj, "max")?.unwrap_or(1);
            Ok(Request::Solve { goal, max })
        }
        "limits" => Ok(Request::Limits(LimitsPatch {
            max_steps: opt_u64(&obj, "max_steps")?,
            deadline_ms: opt_u64(&obj, "deadline_ms")?,
            max_heap_words: opt_u64(&obj, "max_heap_words")?,
            max_local_words: opt_u64(&obj, "max_local_words")?,
            max_global_words: opt_u64(&obj, "max_global_words")?,
            max_control_words: opt_u64(&obj, "max_control_words")?,
            max_trail_words: opt_u64(&obj, "max_trail_words")?,
        })),
        "stats" => Ok(Request::Stats),
        "reset" => Ok(Request::Reset),
        "close" => Ok(Request::Close),
        other => Err(protocol_err(format!("unknown cmd \"{other}\""))),
    }
}

/// Applies a client's requested budgets under the server's caps: a
/// session may always *tighten* its budgets, but each effective
/// budget never exceeds the server cap for that resource (`None` cap
/// = uncapped). This is the tenancy rule — one session cannot grant
/// itself more machine than the operator configured.
pub fn clamp_limits(patch: &LimitsPatch, caps: &ResourceLimits) -> ResourceLimits {
    fn word(requested: Option<u64>, cap: Option<u32>) -> Option<u32> {
        let requested = requested.map(|v| u32::try_from(v).unwrap_or(u32::MAX));
        match (requested, cap) {
            (Some(r), Some(c)) => Some(r.min(c)),
            (Some(r), None) => Some(r),
            (None, c) => c,
        }
    }
    let mut out = ResourceLimits::unlimited();
    out.max_steps = match (patch.max_steps, caps.max_steps) {
        (Some(r), Some(c)) => Some(r.min(c)),
        (Some(r), None) => Some(r),
        (None, c) => c,
    };
    out.deadline = {
        let requested = patch.deadline_ms.map(Duration::from_millis);
        match (requested, caps.deadline) {
            (Some(r), Some(c)) => Some(r.min(c)),
            (Some(r), None) => Some(r),
            (None, c) => c,
        }
    };
    out.max_heap_words = word(patch.max_heap_words, caps.max_heap_words);
    out.max_local_words = word(patch.max_local_words, caps.max_local_words);
    out.max_global_words = word(patch.max_global_words, caps.max_global_words);
    out.max_control_words = word(patch.max_control_words, caps.max_control_words);
    out.max_trail_words = word(patch.max_trail_words, caps.max_trail_words);
    out
}

// ------------------------------------------------------------ responses

/// The greeting sent once per connection, before any request.
pub fn hello_line() -> String {
    ObjectBuilder::new()
        .bool("ok", true)
        .str("event", "hello")
        .u64("proto", WIRE_PROTOCOL_VERSION)
        .finish()
}

/// A plain acknowledgement (`consulted`, `limits`, `reset`, `bye`).
pub fn ack_line(event: &str) -> String {
    ObjectBuilder::new()
        .bool("ok", true)
        .str("event", event)
        .finish()
}

/// One streamed solution: `index` is 0-based within its solve,
/// `bindings` is the engine-neutral rendering (`"X = 1, Y = [2,3]"`,
/// or `"true"` for a variable-free goal).
pub fn solution_line(index: u64, solution: &Solution) -> String {
    ObjectBuilder::new()
        .bool("ok", true)
        .str("event", "solution")
        .u64("index", index)
        .str("bindings", &solution.to_string())
        .finish()
}

/// The terminator of a successful solve: totals for the whole run.
pub fn done_line(solutions: u64, stats: &MachineStats) -> String {
    ObjectBuilder::new()
        .bool("ok", true)
        .str("event", "done")
        .u64("solutions", solutions)
        .u64("steps", stats.steps)
        .u64("sim_time_ns", stats.time_ns)
        .finish()
}

/// The `stats` response: the machine statistics of the most recent
/// solve in this session.
pub fn stats_line(stats: &MachineStats) -> String {
    ObjectBuilder::new()
        .bool("ok", true)
        .str("event", "stats")
        .u64("steps", stats.steps)
        .u64("sim_time_ns", stats.time_ns)
        .u64("user_calls", stats.user_calls)
        .u64("builtin_calls", stats.builtin_calls)
        .u64("choice_points", stats.choice_points)
        .u64("indexed_calls", stats.indexed_calls)
        .finish()
}

/// An engine error mapped onto the wire: stable code, stable kind
/// label, human-readable message.
pub fn error_line(e: &PsiError) -> String {
    ObjectBuilder::new()
        .bool("ok", false)
        .str("event", "error")
        .u64("code", u64::from(e.wire_code()))
        .str("kind", e.wire_kind())
        .str("message", &e.to_string())
        .finish()
}

/// A malformed request ([`CODE_PROTOCOL`]).
pub fn protocol_error_line(message: &str) -> String {
    ObjectBuilder::new()
        .bool("ok", false)
        .str("event", "error")
        .u64("code", CODE_PROTOCOL)
        .str("kind", "protocol")
        .str("message", message)
        .finish()
}

/// A contained machine panic ([`CODE_SESSION_PANIC`]).
pub fn panic_error_line(message: &str) -> String {
    ObjectBuilder::new()
        .bool("ok", false)
        .str("event", "error")
        .u64("code", CODE_SESSION_PANIC)
        .str("kind", "session_panic")
        .str("message", message)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse() {
        assert_eq!(
            parse_request(r#"{"cmd":"consult","src":"p(1)."}"#).unwrap(),
            Request::Consult {
                src: "p(1).".into()
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"solve","goal":"p(X)","max":7}"#).unwrap(),
            Request::Solve {
                goal: "p(X)".into(),
                max: 7
            }
        );
        // `max` defaults to one solution.
        assert_eq!(
            parse_request(r#"{"cmd":"solve","goal":"p(X)"}"#).unwrap(),
            Request::Solve {
                goal: "p(X)".into(),
                max: 1
            }
        );
        assert_eq!(parse_request(r#"{"cmd":"close"}"#).unwrap(), Request::Close);
        let r = parse_request(r#"{"cmd":"limits","max_steps":5,"deadline_ms":100}"#).unwrap();
        assert_eq!(
            r,
            Request::Limits(LimitsPatch {
                max_steps: Some(5),
                deadline_ms: Some(100),
                ..LimitsPatch::default()
            })
        );
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for line in [
            "",
            "garbage",
            "{}",
            r#"{"cmd":"frobnicate"}"#,
            r#"{"cmd":"solve"}"#,
            r#"{"cmd":"solve","goal":"p(X)","max":-1}"#,
            r#"{"cmd":"consult","src":17}"#,
            r#"{"cmd":"limits","max_steps":"lots"}"#,
        ] {
            assert!(parse_request(line).is_err(), "{line:?}");
        }
    }

    #[test]
    fn limits_clamp_to_server_caps() {
        let caps = ResourceLimits::unlimited()
            .with_max_steps(1_000)
            .with_deadline(Duration::from_millis(50));
        // Tightening is honored.
        let patch = LimitsPatch {
            max_steps: Some(10),
            deadline_ms: Some(5),
            ..LimitsPatch::default()
        };
        let got = clamp_limits(&patch, &caps);
        assert_eq!(got.max_steps, Some(10));
        assert_eq!(got.deadline, Some(Duration::from_millis(5)));
        // Exceeding the cap is clamped back to it.
        let greedy = LimitsPatch {
            max_steps: Some(u64::MAX),
            deadline_ms: Some(3_600_000),
            max_heap_words: Some(u64::MAX),
            ..LimitsPatch::default()
        };
        let got = clamp_limits(&greedy, &caps);
        assert_eq!(got.max_steps, Some(1_000));
        assert_eq!(got.deadline, Some(Duration::from_millis(50)));
        assert_eq!(
            got.max_heap_words,
            Some(u32::MAX),
            "uncapped resource: the (saturated) request is honored"
        );
        // No patch at all keeps the caps.
        let got = clamp_limits(&LimitsPatch::default(), &caps);
        assert_eq!(got.max_steps, Some(1_000));
    }

    #[test]
    fn responses_are_parseable_flat_json() {
        use psi_tools::json::parse_object;
        let hello = parse_object(&hello_line()).unwrap();
        assert_eq!(hello.str_field("event").unwrap(), "hello");
        assert_eq!(hello.u64_field("proto").unwrap(), WIRE_PROTOCOL_VERSION);
        let err = parse_object(&error_line(&PsiError::UndefinedPredicate {
            name: "zorp/3".into(),
        }))
        .unwrap();
        assert_eq!(err.u64_field("code").unwrap(), 3);
        assert_eq!(err.str_field("kind").unwrap(), "undefined_predicate");
        assert!(err.str_field("message").unwrap().contains("zorp/3"));
        let p = parse_object(&protocol_error_line("nope")).unwrap();
        assert_eq!(p.u64_field("code").unwrap(), CODE_PROTOCOL);
    }
}
