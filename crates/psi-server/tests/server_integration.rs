//! End-to-end server tests over real TCP connections.
//!
//! Two guarantees are exercised here that the unit tests cannot:
//!
//! * **Concurrency is bit-invisible.** Many sessions solving the
//!   Table 1 programs at once receive exactly the solutions — and
//!   exactly the simulated step counts — of a serial in-process run.
//! * **Faults stay in their session.** A session that exhausts its own
//!   tightened budget gets a typed error and keeps serving, while
//!   concurrent sessions proceed untouched; hostile bytes on one
//!   connection never take down the listener.

use psi_server::{Client, ClientError, LimitsPatch, Server, ServerOptions};
use psi_workloads::suite::table1_suite;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn spawn_server() -> Server {
    Server::spawn(ServerOptions::default()).expect("bind 127.0.0.1:0")
}

/// Serial ground truth for a workload under the serving profile.
fn serial_reference(source: &str, goal: &str, max: usize) -> (Vec<String>, u64) {
    let program = kl0::Program::parse(source).expect("workload parses");
    let mut machine =
        psi_machine::Machine::load(&program, psi_server::serving_config()).expect("workload loads");
    let solutions = machine.solve(goal, max).expect("workload solves");
    (
        solutions.iter().map(ToString::to_string).collect(),
        machine.stats().steps,
    )
}

#[test]
fn concurrent_sessions_match_serial_bit_for_bit() {
    // The ten contest rows: small enough that nineteen threads of
    // them finish quickly even in the test profile, varied enough to
    // cover recursion, backtracking, arithmetic and list traffic.
    // (`load-driver` runs the full nineteen-row suite in release.)
    let suite: Vec<_> = table1_suite().into_iter().take(10).collect();
    let expected: Vec<(String, String, usize, Vec<String>, u64)> = suite
        .iter()
        .map(|entry| {
            let w = &entry.workload;
            let (bindings, steps) = serial_reference(&w.source, &w.goal, w.max_solutions);
            (
                w.source.clone(),
                w.goal.clone(),
                w.max_solutions,
                bindings,
                steps,
            )
        })
        .collect();
    let expected = Arc::new(expected);

    let server = spawn_server();
    let addr = server.local_addr();
    let sessions = 8;
    let mut workers = Vec::new();
    for session_id in 0..sessions {
        let expected = Arc::clone(&expected);
        workers.push(std::thread::spawn(move || {
            for offset in 0..expected.len() {
                let (source, goal, max, bindings, steps) =
                    &expected[(session_id + offset) % expected.len()];
                let mut client = Client::connect(addr).expect("connect");
                client.consult(source).expect("consult");
                let reply = client
                    .solve(goal, u64::try_from(*max).unwrap_or(u64::MAX))
                    .expect("solve");
                assert_eq!(&reply.bindings, bindings, "solutions diverged under load");
                assert_eq!(reply.steps, *steps, "step counts diverged under load");
                client.close().expect("close");
            }
        }));
    }
    for w in workers {
        w.join().expect("session thread");
    }
    assert!(
        server.pool().idle_count() > 0,
        "clean sessions must leave warm machines behind"
    );
    server.shutdown();
}

#[test]
fn one_exhausted_session_degrades_only_itself() {
    let server = spawn_server();
    let addr = server.local_addr();

    // A healthy session in flight...
    let mut healthy = Client::connect(addr).expect("connect healthy");
    healthy.consult("p(1). p(2). p(3).").expect("consult");

    // ...while another session exhausts its own tightened budget.
    let mut greedy = Client::connect(addr).expect("connect greedy");
    greedy
        .consult("nat(z). nat(s(X)) :- nat(X).")
        .expect("consult");
    greedy
        .set_limits(&LimitsPatch {
            max_steps: Some(10_000),
            ..LimitsPatch::default()
        })
        .expect("limits");
    match greedy.solve("nat(X)", u64::MAX) {
        Err(ClientError::Wire(w)) => {
            assert_eq!(w.code, 6, "resource exhaustion is wire code 6: {w}");
            assert_eq!(w.kind, "resource_exhausted");
        }
        other => panic!("expected a typed exhaustion error, got {other:?}"),
    }

    // The greedy session itself survives its error...
    let reply = greedy.solve("nat(z)", 1).expect("post-exhaustion solve");
    assert_eq!(reply.bindings, ["true"]);
    greedy.close().expect("close greedy");

    // ...and the healthy session never noticed.
    let reply = healthy.solve("p(X)", 10).expect("healthy solve");
    assert_eq!(reply.bindings, ["X = 1", "X = 2", "X = 3"]);
    healthy.close().expect("close healthy");
    server.shutdown();
}

/// Drives one raw line at the server and returns the first response
/// line (after the greeting).
fn raw_roundtrip(addr: std::net::SocketAddr, payload: &[u8]) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut greeting = String::new();
    reader.read_line(&mut greeting).expect("greeting");
    assert!(greeting.contains("hello"), "{greeting}");
    writer.write_all(payload).expect("send");
    writer.write_all(b"\n").expect("send newline");
    let mut response = String::new();
    reader.read_line(&mut response).expect("response");
    response
}

#[test]
fn hostile_wire_input_yields_typed_errors_and_the_server_keeps_serving() {
    let server = spawn_server();
    let addr = server.local_addr();

    // Garbage, half-JSON, nested JSON, wrong types: all code 100.
    for payload in [
        &b"total garbage"[..],
        br#"{"cmd":"sol"#,
        br#"{"cmd":{"nested":1}}"#,
        br#"{"cmd":"solve","goal":["a"]}"#,
        br#"{"cmd":"solve","goal":"p(X)","max":"many"}"#,
        b"\x00\x01\x02",
    ] {
        let response = raw_roundtrip(addr, payload);
        let obj = psi_tools::json::parse_object(response.trim()).expect("typed error line");
        assert_eq!(
            obj.u64_field("code").expect("code"),
            psi_server::CODE_PROTOCOL,
            "{payload:?} -> {response}"
        );
    }

    // Invalid UTF-8 bytes are a protocol error, not a crash.
    let response = raw_roundtrip(addr, &[0xff, 0xfe, 0xfd]);
    assert!(response.contains("UTF-8"), "{response}");

    // Hostile *program* text travels fine over the wire and dies in
    // the hardened parser with a typed syntax error (code 8).
    let deep = format!("p :- {}q{}.", "\\+ (".repeat(20_000), ")".repeat(20_000));
    let mut client = Client::connect(addr).expect("connect");
    match client.consult(&deep) {
        Err(ClientError::Wire(w)) => {
            assert_eq!(w.code, 8, "hostile nesting is a syntax error: {w}");
            assert!(w.message.contains("nesting"), "{w}");
        }
        other => panic!("expected a syntax error, got {other:?}"),
    }
    drop(client);

    // An oversized request line is answered then the connection is
    // dropped — and the listener is unharmed.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut greeting = String::new();
    reader.read_line(&mut greeting).expect("greeting");
    let huge = vec![b'a'; 2 * 1024 * 1024];
    // The server may close mid-send; a write error is acceptable.
    let _ = writer.write_all(&huge);
    let _ = writer.write_all(b"\n");
    let mut response = String::new();
    if reader.read_line(&mut response).is_ok() && !response.is_empty() {
        assert!(response.contains("exceeds"), "{response}");
    }

    // After all of the above, a well-behaved client still gets served.
    let mut client = Client::connect(addr).expect("connect after hostility");
    client.consult("ok(yes).").expect("consult");
    let reply = client.solve("ok(X)", 1).expect("solve");
    assert_eq!(reply.bindings, ["X = yes"]);
    client.close().expect("close");
    server.shutdown();
}

#[test]
fn sessions_compose_limits_reset_and_incremental_consult() {
    let server = spawn_server();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    client.consult("p(1).").expect("first consult");
    client
        .consult("p(2). q(X) :- p(X).")
        .expect("incremental consult");
    let reply = client.solve("q(X)", 10).expect("solve");
    assert_eq!(reply.bindings, ["X = 1", "X = 2"]);
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.u64_field("steps").expect("steps"),
        reply.steps,
        "stats reports the most recent solve"
    );
    client.reset().expect("reset");
    let stats = client.stats().expect("stats after reset");
    assert_eq!(stats.u64_field("steps").expect("steps"), 0);
    // Consulted code survives a reset.
    let reply = client.solve("q(X)", 10).expect("solve after reset");
    assert_eq!(reply.bindings, ["X = 1", "X = 2"]);
    client.close().expect("close");
    server.shutdown();
}
