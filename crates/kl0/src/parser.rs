//! Operator-precedence parser for KL0.
//!
//! Implements the standard DEC-10 Prolog operator table subset used by
//! the paper's workloads (arithmetic, comparison, control operators).

use crate::lexer::{tokenize, Spanned, Token};
use crate::Term;
use psi_core::{PsiError, Result};

/// Maximum operator/functor/paren nesting depth the parser accepts.
///
/// The parser is recursive, so unbounded nesting in hostile input
/// (`f(f(f(…` or `((((…`) would overflow the host stack — an abort
/// that `catch_unwind` cannot contain. Every recursion cycle passes
/// through the parser's single entry point, which counts depth and returns a typed
/// [`PsiError::Syntax`] past this limit. Real KL0 programs nest a few
/// dozen levels at most.
pub const MAX_TERM_DEPTH: u32 = 1024;

/// Maximum number of elements in one source-text list.
///
/// `[a,b,c,…]` parses iteratively but builds a cons chain as deep as
/// the list is long, and the chain is later traversed recursively
/// (drop, compare, compile), so an unbounded literal list is the same
/// stack-overflow hazard as deep nesting by other means.
pub const MAX_LIST_ITEMS: usize = 4096;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InfixKind {
    Xfx,
    Xfy,
    Yfx,
}

fn infix_op(name: &str) -> Option<(u32, InfixKind)> {
    Some(match name {
        ":-" => (1200, InfixKind::Xfx),
        ";" => (1100, InfixKind::Xfy),
        "->" => (1050, InfixKind::Xfy),
        // ',' handled specially (it is a token, not an atom)
        "=" | "\\=" | "==" | "\\==" | "is" | "<" | ">" | "=<" | ">=" | "=:=" | "=\\=" | "@<"
        | "@>" | "@=<" | "@>=" | "=.." => (700, InfixKind::Xfx),
        "+" | "-" | "/\\" | "\\/" | "xor" => (500, InfixKind::Yfx),
        "*" | "/" | "//" | "mod" | "rem" | "<<" | ">>" => (400, InfixKind::Yfx),
        _ => return None,
    })
}

fn prefix_op(name: &str) -> Option<(u32, u32)> {
    // (precedence, argument max precedence)
    Some(match name {
        ":-" => (1200, 1199),
        "\\+" => (900, 900),
        "-" => (200, 200),
        _ => return None,
    })
}

/// Parses a sequence of clauses (terms terminated by `.`).
///
/// Anonymous variables (`_`) are renamed apart so each denotes a fresh
/// variable.
///
/// # Errors
///
/// Returns [`PsiError::Syntax`] on malformed input.
pub fn parse_terms(src: &str) -> Result<Vec<Term>> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        anon: 0,
        depth: 0,
    };
    let mut out = Vec::new();
    while !p.at_end() {
        let term = p.parse(1200)?;
        p.expect_end()?;
        out.push(term);
    }
    Ok(out)
}

/// Parses a single term from `src` (no trailing `.` required).
///
/// # Errors
///
/// Returns [`PsiError::Syntax`] on malformed input or trailing tokens.
pub fn parse_term(src: &str) -> Result<Term> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        anon: 0,
        depth: 0,
    };
    let term = p.parse(1200)?;
    if !p.at_end() {
        return Err(p.error_here("trailing tokens after term"));
    }
    Ok(term)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    anon: u32,
    depth: u32,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, detail: impl Into<String>) -> PsiError {
        let (line, column) = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| (s.line, s.column))
            .unwrap_or((0, 0));
        PsiError::Syntax {
            line,
            column,
            detail: detail.into(),
        }
    }

    fn expect_end(&mut self) -> Result<()> {
        match self.bump() {
            Some(Token::End) => Ok(()),
            _ => Err(self.error_here("expected '.' at end of clause")),
        }
    }

    fn fresh_anon(&mut self) -> Term {
        self.anon += 1;
        Term::Var(format!("_G{}", self.anon))
    }

    /// Parses a term with precedence at most `max_prec`.
    ///
    /// Every recursive descent path (primary, functor args, lists,
    /// operator right-hand sides) re-enters through here, so this one
    /// guard bounds the host-stack depth of the whole parse.
    fn parse(&mut self, max_prec: u32) -> Result<Term> {
        if self.depth >= MAX_TERM_DEPTH {
            return Err(self.error_here(format!("term nesting exceeds {MAX_TERM_DEPTH} levels")));
        }
        self.depth += 1;
        let result = self.parse_at(max_prec);
        self.depth -= 1;
        result
    }

    fn parse_at(&mut self, max_prec: u32) -> Result<Term> {
        let mut left = self.parse_primary(max_prec)?;
        loop {
            // ',' as the conjunction operator (xfy, 1000).
            if matches!(self.peek(), Some(Token::Comma)) && max_prec >= 1000 {
                self.bump();
                let right = self.parse(1000)?;
                left = Term::Struct(",".to_owned(), vec![left, right]);
                continue;
            }
            let Some(Token::Atom(name)) = self.peek() else {
                break;
            };
            let Some((prec, kind)) = infix_op(name) else {
                break;
            };
            if prec > max_prec {
                break;
            }
            let name = name.clone();
            self.bump();
            let right_max = match kind {
                InfixKind::Xfx | InfixKind::Yfx => prec - 1,
                InfixKind::Xfy => prec,
            };
            let right = self.parse(right_max)?;
            left = Term::Struct(name, vec![left, right]);
            // For yfx the loop continues naturally (left associativity);
            // for xfx/xfy another operator of the same precedence on the
            // left is now illegal, which the prec checks enforce since
            // left is already consumed.
        }
        Ok(left)
    }

    fn parse_primary(&mut self, max_prec: u32) -> Result<Term> {
        match self.bump() {
            Some(Token::Int(n)) => Ok(Term::Int(n)),
            Some(Token::Var(v)) => {
                if v == "_" {
                    Ok(self.fresh_anon())
                } else {
                    Ok(Term::Var(v))
                }
            }
            Some(Token::Open) => {
                let t = self.parse(1200)?;
                match self.bump() {
                    Some(Token::Close) => Ok(t),
                    _ => Err(self.error_here("expected ')'")),
                }
            }
            Some(Token::OpenList) => self.parse_list(),
            Some(Token::Atom(name)) => {
                // functor application?
                if matches!(self.peek(), Some(Token::FunctorOpen)) {
                    self.bump();
                    let mut args = vec![self.parse(999)?];
                    loop {
                        match self.bump() {
                            Some(Token::Comma) => args.push(self.parse(999)?),
                            Some(Token::Close) => break,
                            _ => return Err(self.error_here("expected ',' or ')'")),
                        }
                    }
                    return Ok(Term::Struct(name, args));
                }
                // prefix operator?
                if let Some((prec, arg_max)) = prefix_op(&name) {
                    if prec <= max_prec && self.starts_term() {
                        // negative numeric literal
                        if name == "-" {
                            if let Some(Token::Int(n)) = self.peek() {
                                let n = *n;
                                self.bump();
                                return Ok(Term::Int(-n));
                            }
                        }
                        let arg = self.parse(arg_max)?;
                        return Ok(Term::Struct(name, vec![arg]));
                    }
                }
                Ok(Term::Atom(name))
            }
            _ => Err(self.error_here("expected a term")),
        }
    }

    /// Could the next token start a term (used to disambiguate prefix
    /// operators from bare atoms)?
    fn starts_term(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::Int(_) | Token::Var(_) | Token::Atom(_) | Token::Open | Token::OpenList)
        )
    }

    fn parse_list(&mut self) -> Result<Term> {
        if matches!(self.peek(), Some(Token::CloseList)) {
            self.bump();
            return Ok(Term::nil());
        }
        let mut elements = vec![self.parse(999)?];
        loop {
            if elements.len() > MAX_LIST_ITEMS {
                return Err(
                    self.error_here(format!("list literal exceeds {MAX_LIST_ITEMS} elements"))
                );
            }
            match self.bump() {
                Some(Token::Comma) => elements.push(self.parse(999)?),
                Some(Token::Bar) => {
                    let tail = self.parse(999)?;
                    match self.bump() {
                        Some(Token::CloseList) => {
                            return Ok(elements
                                .into_iter()
                                .rev()
                                .fold(tail, |t, h| Term::cons(h, t)));
                        }
                        _ => return Err(self.error_here("expected ']'")),
                    }
                }
                Some(Token::CloseList) => {
                    return Ok(Term::list(elements));
                }
                _ => return Err(self.error_here("expected ',', '|' or ']'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Term {
        parse_term(src).unwrap()
    }

    #[test]
    fn atoms_ints_vars() {
        assert_eq!(p("foo"), Term::atom("foo"));
        assert_eq!(p("42"), Term::int(42));
        assert_eq!(p("X"), Term::var("X"));
    }

    #[test]
    fn compounds_and_lists() {
        assert_eq!(p("f(a,B)").to_string(), "f(a,B)");
        assert_eq!(p("[1,2,3]").to_string(), "[1,2,3]");
        assert_eq!(p("[H|T]").to_string(), "[H|T]");
        assert_eq!(p("[]"), Term::nil());
        assert_eq!(p("[a,b|T]").to_string(), "[a,b|T]");
    }

    #[test]
    fn arithmetic_precedence() {
        // 1+2*3 = +(1, *(2,3))
        assert_eq!(p("1+2*3").to_string(), "+(1,*(2,3))");
        // 1+2+3 = +(+(1,2),3) (yfx)
        assert_eq!(p("1+2+3").to_string(), "+(+(1,2),3)");
        assert_eq!(p("(1+2)*3").to_string(), "*(+(1,2),3)");
        assert_eq!(p("X is Y-1").to_string(), "is(X,-(Y,1))");
        assert_eq!(p("10 mod 3").to_string(), "mod(10,3)");
    }

    #[test]
    fn negative_literals() {
        assert_eq!(p("-5"), Term::int(-5));
        assert_eq!(p("X is -5 + 1").to_string(), "is(X,+(-5,1))");
        assert_eq!(p("-(a)").to_string(), "-(a)");
    }

    #[test]
    fn clause_operator() {
        let t = p("a :- b, c");
        assert_eq!(t.to_string(), ":-(a,','(b,c))");
    }

    #[test]
    fn control_operators() {
        assert_eq!(p("(a -> b ; c)").to_string(), ";(->(a,b),c)");
        assert_eq!(p("\\+ a").to_string(), "\\+(a)");
        // xfy: a;b;c = ;(a, ;(b,c))
        assert_eq!(p("a;b;c").to_string(), ";(a,;(b,c))");
    }

    #[test]
    fn comma_is_xfy() {
        assert_eq!(p("(a,b,c)").to_string(), "','(a,','(b,c))");
    }

    #[test]
    fn anonymous_vars_are_fresh() {
        let t = p("f(_,_)");
        let vars = t.variables();
        assert_eq!(vars.len(), 2, "each _ distinct: {vars:?}");
    }

    #[test]
    fn parse_terms_handles_many_clauses() {
        let ts = parse_terms("a. b :- c. f(X).").unwrap();
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn args_bind_tighter_than_comma() {
        assert_eq!(p("f(1+2, g(3))").to_string(), "f(+(1,2),g(3))");
    }

    #[test]
    fn errors_are_syntax_errors() {
        assert!(matches!(
            parse_term("f(").unwrap_err(),
            PsiError::Syntax { .. }
        ));
        assert!(matches!(
            parse_term(")").unwrap_err(),
            PsiError::Syntax { .. }
        ));
        assert!(matches!(
            parse_terms("a").unwrap_err(),
            PsiError::Syntax { .. }
        ));
    }

    #[test]
    fn hostile_nesting_is_a_syntax_error_not_a_stack_overflow() {
        // Far deeper than MAX_TERM_DEPTH; must come back as Err, not
        // blow the host stack.
        for src in [
            format!("{}a{}", "f(".repeat(100_000), ")".repeat(100_000)),
            format!("{}a{}", "(".repeat(100_000), ")".repeat(100_000)),
            format!("{}a{}", "[".repeat(100_000), "]".repeat(100_000)),
            format!("{}a", "\\+ ".repeat(100_000)),
        ] {
            let err = parse_term(&src).unwrap_err();
            assert!(matches!(err, PsiError::Syntax { .. }), "{err}");
        }
        // Nesting under the cap still parses.
        let ok = format!("{}a{}", "f(".repeat(512), ")".repeat(512));
        assert!(parse_term(&ok).is_ok());
    }

    #[test]
    fn hostile_list_length_is_a_syntax_error() {
        let src = format!("[{}0]", "0,".repeat(MAX_LIST_ITEMS * 2));
        let err = parse_term(&src).unwrap_err();
        assert!(matches!(err, PsiError::Syntax { .. }), "{err}");
        let ok = format!("[{}0]", "0,".repeat(1000));
        assert!(parse_term(&ok).is_ok());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(p("X =< 3").to_string(), "=<(X,3)");
        assert_eq!(p("X =:= Y").to_string(), "=:=(X,Y)");
        assert_eq!(p("X \\== Y").to_string(), "\\==(X,Y)");
    }

    #[test]
    fn extended_arithmetic_operators() {
        // Shifts and division bind like multiplication (400 yfx)...
        assert_eq!(p("1 + 2 << 3").to_string(), "+(1,<<(2,3))");
        assert_eq!(p("X is 7 / 2").to_string(), "is(X,/(7,2))");
        assert_eq!(p("10 rem 3 >> 1").to_string(), ">>(rem(10,3),1)");
        // ...bitwise and/or/xor like addition (500 yfx).
        assert_eq!(p("1 /\\ 2 \\/ 3").to_string(), "\\/(/\\(1,2),3)");
        assert_eq!(p("a xor b xor c").to_string(), "xor(xor(a,b),c)");
        assert_eq!(p("1 \\/ 2 /\\ 4").to_string(), "/\\(\\/(1,2),4)");
        // A bare `xor`/`rem` atom in argument position is still an atom.
        assert_eq!(p("f(xor, rem)").to_string(), "f(xor,rem)");
    }
}
