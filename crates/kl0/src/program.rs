//! Clause database: parsed clauses grouped by predicate, in source
//! order.
//!
//! A [`Program`] is the unit both engines load and `consult` extends;
//! it preserves clause order within each predicate (Prolog's solution
//! order depends on it) and the first-seen order of predicates
//! themselves. Bodies are still operator trees at this stage — see
//! [`crate::lower`] for the flattened form the engines consume.

use crate::parser::parse_terms;
use crate::Term;
use psi_core::{PsiError, Result};
use std::collections::HashMap;
use std::fmt;

/// Key identifying a predicate: name and arity.
pub type PredicateKey = (String, usize);

/// A source clause: head plus optional body (still an operator tree;
/// see [`crate::lower`] for the flattened form the engines consume).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// The clause head (an atom or compound term).
    pub head: Term,
    /// The clause body, `None` for facts.
    pub body: Option<Term>,
}

impl Clause {
    /// The predicate this clause belongs to.
    pub fn key(&self) -> PredicateKey {
        let (name, arity) = self
            .head
            .functor()
            .expect("clause heads are callable by construction");
        (name.to_owned(), arity)
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.body {
            Some(b) => write!(f, "{} :- {}.", self.head, b),
            None => write!(f, "{}.", self.head),
        }
    }
}

/// An ordered clause database, as loaded from source text.
///
/// ```
/// use kl0::Program;
/// let p = Program::parse("p(1). p(2). q(X) :- p(X).")?;
/// assert_eq!(p.clauses_for(&("p".to_string(), 1)).len(), 2);
/// # Ok::<(), psi_core::PsiError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Program {
    order: Vec<PredicateKey>,
    clauses: HashMap<PredicateKey, Vec<Clause>>,
    directives: Vec<Term>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Parses a program from source text.
    ///
    /// # Errors
    ///
    /// Returns [`PsiError::Syntax`] for malformed text and
    /// [`PsiError::Compile`] for clauses whose head is not callable.
    pub fn parse(src: &str) -> Result<Program> {
        let mut p = Program::new();
        p.consult(src)?;
        Ok(p)
    }

    /// Adds all clauses of `src` to the program (appended after
    /// existing clauses of the same predicates).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Program::parse`].
    pub fn consult(&mut self, src: &str) -> Result<()> {
        for term in parse_terms(src)? {
            // Destructure by moving the arg vector into fixed-size
            // arrays so the `:-/2` and `:-/1` arms are statically
            // panic-free (wire input flows through here unfiltered);
            // `:-` at any other arity is rejected as uncallable.
            match term {
                Term::Struct(op, args) if op == ":-" => match <[Term; 2]>::try_from(args) {
                    Ok([head, body]) => self.add_clause(Clause {
                        head,
                        body: Some(body),
                    })?,
                    Err(args) => match <[Term; 1]>::try_from(args) {
                        Ok([goal]) => self.directives.push(goal),
                        Err(args) => {
                            return Err(PsiError::Compile {
                                detail: format!(
                                    "clause head is not callable: {}",
                                    Term::Struct(":-".to_owned(), args)
                                ),
                            })
                        }
                    },
                },
                head @ (Term::Atom(_) | Term::Struct(..)) => {
                    self.add_clause(Clause { head, body: None })?;
                }
                other => {
                    return Err(PsiError::Compile {
                        detail: format!("clause head is not callable: {other}"),
                    })
                }
            }
        }
        Ok(())
    }

    /// Appends one clause.
    ///
    /// # Errors
    ///
    /// Returns [`PsiError::Compile`] if the head is a variable or
    /// integer.
    pub fn add_clause(&mut self, clause: Clause) -> Result<()> {
        if clause.head.functor().is_none() {
            return Err(PsiError::Compile {
                detail: format!("clause head is not callable: {}", clause.head),
            });
        }
        let key = clause.key();
        let entry = self.clauses.entry(key.clone()).or_default();
        if entry.is_empty() {
            self.order.push(key);
        }
        entry.push(clause);
        Ok(())
    }

    /// Iterates over predicate keys in first-definition order.
    pub fn predicates(&self) -> impl Iterator<Item = &PredicateKey> {
        self.order.iter()
    }

    /// The clauses of `key`, in source order (empty if undefined).
    pub fn clauses_for(&self, key: &PredicateKey) -> &[Clause] {
        self.clauses.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The `:- Goal.` directives, in source order.
    pub fn directives(&self) -> &[Term] {
        &self.directives
    }

    /// Total number of clauses.
    pub fn clause_count(&self) -> usize {
        self.clauses.values().map(Vec::len).sum()
    }

    /// Merges another program's clauses into this one (library +
    /// workload composition).
    pub fn extend_with(&mut self, other: Program) {
        for key in other.order {
            let clauses = other.clauses.get(&key).cloned().unwrap_or_default();
            for c in clauses {
                self.add_clause(c).expect("clauses already validated");
            }
        }
        self.directives.extend(other.directives);
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for key in &self.order {
            for clause in self.clauses_for(key) {
                writeln!(f, "{clause}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_facts_and_rules() {
        let p = Program::parse("p(1). p(2). q(X) :- p(X), p(X).").unwrap();
        assert_eq!(p.clause_count(), 3);
        assert_eq!(p.clauses_for(&("p".into(), 1)).len(), 2);
        let q = &p.clauses_for(&("q".into(), 1))[0];
        assert!(q.body.is_some());
    }

    #[test]
    fn directives_are_collected() {
        let p = Program::parse(":- main. p.").unwrap();
        assert_eq!(p.directives().len(), 1);
        assert_eq!(p.clause_count(), 1);
    }

    #[test]
    fn clause_order_is_preserved() {
        let p = Program::parse("b. a. b2. a2 :- b.").unwrap();
        let keys: Vec<_> = p.predicates().map(|(n, _)| n.as_str()).collect();
        assert_eq!(keys, vec!["b", "a", "b2", "a2"]);
    }

    #[test]
    fn bad_heads_are_rejected() {
        assert!(Program::parse("42.").is_err());
        assert!(Program::parse("X :- a.").is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        let src = "app([],L,L). app([H|T],L,[H|R]) :- app(T,L,R).";
        let p = Program::parse(src).unwrap();
        let printed = p.to_string();
        let p2 = Program::parse(&printed).unwrap();
        assert_eq!(p.clause_count(), p2.clause_count());
        assert_eq!(printed, p2.to_string());
    }

    #[test]
    fn extend_with_appends() {
        let mut p = Program::parse("p(1).").unwrap();
        p.extend_with(Program::parse("p(2). r.").unwrap());
        assert_eq!(p.clauses_for(&("p".into(), 1)).len(), 2);
        assert_eq!(p.clause_count(), 3);
    }
}
