//! Lowering of extended control constructs.
//!
//! KL0 extends Prolog with control functions (§2.1, citing Takagi and Warren); at
//! the source level the workloads use the standard `;`, `->` and `\+`
//! constructs. Both back ends only understand conjunctions of calls
//! plus cut, so this pass rewrites each construct into an auxiliary
//! predicate:
//!
//! * `(C -> T ; E)` becomes `aux(V...) :- C, !, T.` / `aux(V...) :- E.`
//! * `(A ; B)` becomes `aux(V...) :- A.` / `aux(V...) :- B.`
//! * `\+ G` becomes `aux(V...) :- G, !, fail.` / `aux(V...).`
//!
//! where `V...` are the variables the construct shares with its
//! clause. Cut inside a lowered construct is local to it, which
//! matches the DEC-10 semantics for `\+` and the condition of
//! if-then-else.

use crate::{Clause, PredicateKey, Program, Term};
use psi_core::{PsiError, Result};
use std::collections::HashMap;

/// A body goal after lowering: either a cut or a plain call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatGoal {
    /// `!` — prune choice points created since the clause was entered.
    Cut,
    /// Any other goal, including builtins and generated aux calls.
    Call(Term),
}

/// A clause whose body is a flat sequence of [`FlatGoal`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatClause {
    /// The clause head.
    pub head: Term,
    /// The flattened body.
    pub goals: Vec<FlatGoal>,
}

/// A program in which every clause body is flat.
#[derive(Debug, Clone, Default)]
pub struct LoweredProgram {
    order: Vec<PredicateKey>,
    map: HashMap<PredicateKey, Vec<FlatClause>>,
    aux_counter: u32,
}

impl LoweredProgram {
    /// Lowers a parsed program.
    ///
    /// # Errors
    ///
    /// Returns [`PsiError::Compile`] if a body goal is an integer or
    /// other non-callable term.
    pub fn lower(program: &Program) -> Result<LoweredProgram> {
        LoweredProgram::lower_from(program, 0)
    }

    /// Lowers a parsed program with the aux-predicate counter seeded
    /// at `aux_base`, so the generated `$auxN` names start at
    /// `$aux{aux_base + 1}`.
    ///
    /// Incremental compilation (consult, query compilation, dynamic
    /// `assert`) lowers each batch of clauses as its own
    /// [`LoweredProgram`]; seeding the counter with the number of aux
    /// predicates the target image has already compiled keeps the
    /// generated names globally unique. Without the seed, a second
    /// batch containing `;`/`->`/`\+` would regenerate `$aux1` and its
    /// clauses would be appended to the *first* batch's aux predicate.
    ///
    /// ```
    /// use kl0::{LoweredProgram, Program};
    ///
    /// let first = LoweredProgram::lower(&Program::parse("p :- (a ; b).")?)?;
    /// assert_eq!(first.aux_counter(), 1);
    /// // The next batch continues the numbering instead of reusing $aux1.
    /// let next = LoweredProgram::lower_from(
    ///     &Program::parse("q :- (c ; d).")?,
    ///     first.aux_counter(),
    /// )?;
    /// assert!(next.predicates().any(|(n, _)| n == "$aux2"));
    /// # Ok::<(), psi_core::PsiError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// See [`LoweredProgram::lower`].
    pub fn lower_from(program: &Program, aux_base: u32) -> Result<LoweredProgram> {
        let mut lp = LoweredProgram {
            aux_counter: aux_base,
            ..LoweredProgram::default()
        };
        for key in program.predicates() {
            for clause in program.clauses_for(key) {
                let flat = lp.lower_clause(clause)?;
                lp.push(flat);
            }
        }
        Ok(lp)
    }

    /// The aux-predicate counter after lowering: the highest `N` of
    /// any generated `$auxN`, suitable as the `aux_base` seed of the
    /// next incremental [`LoweredProgram::lower_from`] against the
    /// same image.
    pub fn aux_counter(&self) -> u32 {
        self.aux_counter
    }

    /// Iterates over predicate keys in definition order (generated aux
    /// predicates come after the predicate that introduced them).
    pub fn predicates(&self) -> impl Iterator<Item = &PredicateKey> {
        self.order.iter()
    }

    /// The flat clauses of `key` (empty if undefined).
    pub fn clauses_for(&self, key: &PredicateKey) -> &[FlatClause] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of flat clauses.
    pub fn clause_count(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    fn push(&mut self, clause: FlatClause) {
        let (name, arity) = clause
            .head
            .functor()
            .expect("flat clause heads are callable");
        let key = (name.to_owned(), arity);
        let entry = self.map.entry(key.clone()).or_default();
        if entry.is_empty() {
            self.order.push(key);
        }
        entry.push(clause);
    }

    fn lower_clause(&mut self, clause: &Clause) -> Result<FlatClause> {
        let mut goals = Vec::new();
        if let Some(body) = &clause.body {
            self.flatten(body, &mut goals)?;
        }
        Ok(FlatClause {
            head: clause.head.clone(),
            goals,
        })
    }

    fn flatten(&mut self, goal: &Term, out: &mut Vec<FlatGoal>) -> Result<()> {
        match goal {
            Term::Struct(op, args) if op == "," && args.len() == 2 => {
                self.flatten(&args[0], out)?;
                self.flatten(&args[1], out)
            }
            Term::Atom(a) if a == "!" => {
                out.push(FlatGoal::Cut);
                Ok(())
            }
            Term::Atom(a) if a == "true" => Ok(()),
            Term::Struct(op, args) if op == ";" && args.len() == 2 => {
                // if-then-else or plain disjunction
                if let Term::Struct(arrow, ct) = &args[0] {
                    if arrow == "->" && ct.len() == 2 {
                        return self.lower_if_then_else(&ct[0], &ct[1], &args[1], out);
                    }
                }
                self.lower_disjunction(&args[0], &args[1], out)
            }
            Term::Struct(op, args) if op == "->" && args.len() == 2 => {
                let fail = Term::atom("fail");
                self.lower_if_then_else(&args[0], &args[1], &fail, out)
            }
            Term::Struct(op, args) if op == "\\+" && args.len() == 1 => {
                self.lower_negation(&args[0], out)
            }
            Term::Atom(_) | Term::Struct(..) => {
                out.push(FlatGoal::Call(goal.clone()));
                Ok(())
            }
            Term::Var(_) => Err(PsiError::Compile {
                detail: "call through a variable goal is not supported".into(),
            }),
            Term::Int(_) => Err(PsiError::Compile {
                detail: format!("body goal is not callable: {goal}"),
            }),
        }
    }

    fn aux_head(&mut self, parts: &[&Term]) -> (Term, Vec<Term>) {
        self.aux_counter += 1;
        let name = format!("$aux{}", self.aux_counter);
        let mut vars: Vec<Term> = Vec::new();
        for part in parts {
            for v in part.variables() {
                let t = Term::var(v);
                if !vars.contains(&t) {
                    vars.push(t);
                }
            }
        }
        (Term::compound(&name, vars.clone()), vars)
    }

    fn lower_if_then_else(
        &mut self,
        cond: &Term,
        then: &Term,
        els: &Term,
        out: &mut Vec<FlatGoal>,
    ) -> Result<()> {
        let (head, _) = self.aux_head(&[cond, then, els]);
        // aux :- Cond, !, Then.
        let mut goals1 = Vec::new();
        self.flatten(cond, &mut goals1)?;
        goals1.push(FlatGoal::Cut);
        self.flatten(then, &mut goals1)?;
        self.push(FlatClause {
            head: head.clone(),
            goals: goals1,
        });
        // aux :- Else.
        let mut goals2 = Vec::new();
        self.flatten(els, &mut goals2)?;
        self.push(FlatClause {
            head: head.clone(),
            goals: goals2,
        });
        out.push(FlatGoal::Call(head));
        Ok(())
    }

    fn lower_disjunction(&mut self, a: &Term, b: &Term, out: &mut Vec<FlatGoal>) -> Result<()> {
        let (head, _) = self.aux_head(&[a, b]);
        for branch in [a, b] {
            let mut goals = Vec::new();
            self.flatten(branch, &mut goals)?;
            self.push(FlatClause {
                head: head.clone(),
                goals,
            });
        }
        out.push(FlatGoal::Call(head));
        Ok(())
    }

    fn lower_negation(&mut self, inner: &Term, out: &mut Vec<FlatGoal>) -> Result<()> {
        let (head, _) = self.aux_head(&[inner]);
        // aux :- G, !, fail.
        let mut goals1 = Vec::new();
        self.flatten(inner, &mut goals1)?;
        goals1.push(FlatGoal::Cut);
        goals1.push(FlatGoal::Call(Term::atom("fail")));
        self.push(FlatClause {
            head: head.clone(),
            goals: goals1,
        });
        // aux.
        self.push(FlatClause {
            head: head.clone(),
            goals: Vec::new(),
        });
        out.push(FlatGoal::Call(head));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lowered(src: &str) -> LoweredProgram {
        LoweredProgram::lower(&Program::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn plain_bodies_stay_flat() {
        let lp = lowered("p :- a, b, c.");
        let cl = &lp.clauses_for(&("p".into(), 0))[0];
        assert_eq!(cl.goals.len(), 3);
        assert!(matches!(cl.goals[0], FlatGoal::Call(_)));
    }

    #[test]
    fn cut_and_true_lowering() {
        let lp = lowered("p :- a, !, true, b.");
        let cl = &lp.clauses_for(&("p".into(), 0))[0];
        assert_eq!(cl.goals.len(), 3); // a, !, b — true vanishes
        assert!(matches!(cl.goals[1], FlatGoal::Cut));
    }

    #[test]
    fn disjunction_creates_aux_predicate() {
        let lp = lowered("p(X) :- (q(X) ; r(X)).");
        // p/1 plus one aux with two clauses
        assert_eq!(lp.clause_count(), 3);
        let aux_key = lp
            .predicates()
            .find(|(n, _)| n.starts_with("$aux"))
            .cloned()
            .unwrap();
        assert_eq!(aux_key.1, 1, "aux carries the shared variable X");
        assert_eq!(lp.clauses_for(&aux_key).len(), 2);
    }

    #[test]
    fn if_then_else_compiles_to_cut() {
        let lp = lowered("max(X,Y,Z) :- (X > Y -> Z = X ; Z = Y).");
        let aux_key = lp
            .predicates()
            .find(|(n, _)| n.starts_with("$aux"))
            .cloned()
            .unwrap();
        assert_eq!(aux_key.1, 3);
        let auxs = lp.clauses_for(&aux_key);
        assert_eq!(auxs.len(), 2);
        assert!(auxs[0].goals.iter().any(|g| matches!(g, FlatGoal::Cut)));
        assert!(!auxs[1].goals.iter().any(|g| matches!(g, FlatGoal::Cut)));
    }

    #[test]
    fn negation_as_failure() {
        let lp = lowered("p(X) :- \\+ q(X), r(X).");
        let aux_key = lp
            .predicates()
            .find(|(n, _)| n.starts_with("$aux"))
            .cloned()
            .unwrap();
        let auxs = lp.clauses_for(&aux_key);
        assert_eq!(auxs.len(), 2);
        assert_eq!(
            auxs[0].goals.last(),
            Some(&FlatGoal::Call(Term::atom("fail")))
        );
        assert!(auxs[1].goals.is_empty());
    }

    #[test]
    fn nested_constructs() {
        let lp = lowered("p(X) :- (a(X) ; (b(X) -> c(X) ; d(X))).");
        // p/1, outer aux (2 clauses), inner aux (2 clauses)
        assert_eq!(lp.clause_count(), 5);
    }

    #[test]
    fn bare_if_then_gets_implicit_fail_else() {
        let lp = lowered("p(X) :- (a(X) -> b(X)).");
        let aux_key = lp
            .predicates()
            .find(|(n, _)| n.starts_with("$aux"))
            .cloned()
            .unwrap();
        let auxs = lp.clauses_for(&aux_key);
        assert_eq!(auxs[1].goals, vec![FlatGoal::Call(Term::atom("fail"))]);
    }

    #[test]
    fn non_callable_goals_are_rejected() {
        assert!(LoweredProgram::lower(&Program::parse("p :- 42.").unwrap()).is_err());
        assert!(LoweredProgram::lower(&Program::parse("p :- X.").unwrap()).is_err());
    }
}
