//! KL0 front end.
//!
//! KL0 is the predicate-logic language the PSI executes directly — an
//! extended Prolog (§2.1). This crate provides the textual front end
//! shared by *both* execution engines of the reproduction (the PSI
//! firmware interpreter in `psi-machine` and the DEC-10-style WAM in
//! `dec10`):
//!
//! * [`lexer`] — tokenizer (atoms, variables, integers, quoted atoms,
//!   `%` and `/* */` comments),
//! * [`parser`] — operator-precedence parser for the standard Prolog
//!   operator table subset used by the workloads,
//! * [`Term`], [`Clause`], [`Program`] — the AST and clause database,
//! * [`lower`] — lowering of the extended control constructs
//!   (`;`, `->`, `\+`) into plain clauses with auxiliary predicates,
//!   so both back ends only ever see conjunctions and cut.
//!
//! The language itself — grammar, the full operator table, every
//! builtin with its charging behavior on the three execution lanes,
//! and the dynamic clause database semantics — is specified in
//! `docs/KL0.md` at the repository root.
//!
//! # Example
//!
//! ```
//! use kl0::Program;
//!
//! let program = Program::parse(
//!     "app([], L, L).\n\
//!      app([H|T], L, [H|R]) :- app(T, L, R).",
//! )?;
//! assert_eq!(program.predicates().count(), 1);
//! # Ok::<(), psi_core::PsiError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod lower;
pub mod parser;
mod program;
mod term;

pub use lower::{FlatClause, FlatGoal, LoweredProgram};
pub use program::{Clause, PredicateKey, Program};
pub use term::{ArgShape, Term};
