//! Tokenizer for KL0 source text.

use psi_core::{PsiError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An atom: unquoted lowercase identifier, quoted atom, symbolic
    /// atom, or the solo atoms `!` and `;`.
    Atom(String),
    /// A variable name (uppercase or `_` start). Anonymous `_`
    /// variables are renamed apart by the parser, not the lexer.
    Var(String),
    /// An integer literal.
    Int(i32),
    /// `(` immediately following an atom (functor application).
    FunctorOpen,
    /// A free-standing `(`.
    Open,
    /// `)`.
    Close,
    /// `[`.
    OpenList,
    /// `]`.
    CloseList,
    /// `,` (both argument separator and conjunction operator).
    Comma,
    /// `|` in list tails.
    Bar,
    /// The clause-terminating `.`.
    End,
}

/// A token plus its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Line number, 1-based.
    pub line: u32,
    /// Column number, 1-based.
    pub column: u32,
}

const SYMBOLIC: &str = "+-*/\\^<>=~:.?@#&$";

/// Tokenizes a complete source text.
///
/// # Errors
///
/// Returns [`PsiError::Syntax`] for unterminated quotes, stray
/// characters, or integer overflow.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    column: u32,
    out: Vec<Spanned>,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            out: Vec::new(),
            src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn error(&self, detail: impl Into<String>) -> PsiError {
        PsiError::Syntax {
            line: self.line,
            column: self.column,
            detail: detail.into(),
        }
    }

    fn push(&mut self, token: Token, line: u32, column: u32) {
        self.out.push(Spanned {
            token,
            line,
            column,
        });
    }

    fn run(mut self) -> Result<Vec<Spanned>> {
        debug_assert_eq!(self.src.chars().count(), self.chars.len());
        while let Some(c) = self.peek() {
            let (line, column) = (self.line, self.column);
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '%' => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                '(' => {
                    let adjacent = self.prev_adjacent();
                    self.bump();
                    // '(' immediately after an atom (no whitespace) is
                    // functor application, per the DEC-10 convention.
                    let prev_is_functor = matches!(
                        self.out.last(),
                        Some(Spanned {
                            token: Token::Atom(_),
                            ..
                        })
                    ) && adjacent;
                    if prev_is_functor {
                        self.push(Token::FunctorOpen, line, column);
                    } else {
                        self.push(Token::Open, line, column);
                    }
                }
                ')' => {
                    self.bump();
                    self.push(Token::Close, line, column);
                }
                '[' => {
                    self.bump();
                    self.push(Token::OpenList, line, column);
                }
                ']' => {
                    self.bump();
                    self.push(Token::CloseList, line, column);
                }
                ',' => {
                    self.bump();
                    self.push(Token::Comma, line, column);
                }
                '|' => {
                    self.bump();
                    self.push(Token::Bar, line, column);
                }
                '!' => {
                    self.bump();
                    self.push(Token::Atom("!".to_owned()), line, column);
                }
                ';' => {
                    self.bump();
                    self.push(Token::Atom(";".to_owned()), line, column);
                }
                '\'' => {
                    self.bump();
                    let atom = self.quoted()?;
                    self.push(Token::Atom(atom), line, column);
                }
                '0'..='9' => {
                    let n = self.integer()?;
                    self.push(Token::Int(n), line, column);
                }
                c if c.is_ascii_lowercase() => {
                    let name = self.identifier();
                    self.push(Token::Atom(name), line, column);
                }
                c if c.is_ascii_uppercase() || c == '_' => {
                    let name = self.identifier();
                    self.push(Token::Var(name), line, column);
                }
                '/' if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some('*') if self.peek() == Some('/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                c if SYMBOLIC.contains(c) => {
                    let sym = self.symbolic();
                    if sym == "." && self.end_of_clause() {
                        self.push(Token::End, line, column);
                    } else {
                        self.push(Token::Atom(sym), line, column);
                    }
                }
                other => return Err(self.error(format!("unexpected character {other:?}"))),
            }
        }
        Ok(self.out)
    }

    /// Is the character before the current one part of a token (no
    /// intervening whitespace)? Decides functor application for `(`.
    fn prev_adjacent(&self) -> bool {
        if self.pos == 0 {
            return false;
        }
        let prev = self.chars[self.pos - 1];
        prev.is_ascii_alphanumeric() || prev == '_' || prev == '\'' || SYMBOLIC.contains(prev)
    }

    /// A `.` ends a clause when followed by whitespace or EOF.
    fn end_of_clause(&self) -> bool {
        matches!(
            self.peek(),
            None | Some(' ') | Some('\t') | Some('\r') | Some('\n') | Some('%')
        )
    }

    fn quoted(&mut self) -> Result<String> {
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('\'') => {
                    if self.peek() == Some('\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Ok(s);
                    }
                }
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some('\'') => s.push('\''),
                    Some(other) => return Err(self.error(format!("bad escape \\{other}"))),
                    None => return Err(self.error("unterminated quoted atom")),
                },
                Some(c) => s.push(c),
                None => return Err(self.error("unterminated quoted atom")),
            }
        }
    }

    fn integer(&mut self) -> Result<i32> {
        let mut n: i64 = 0;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                self.bump();
                n = n * 10 + d as i64;
                if n > i32::MAX as i64 {
                    return Err(self.error("integer literal overflows 32 bits"));
                }
            } else {
                break;
            }
        }
        Ok(n as i32)
    }

    fn identifier(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn symbolic(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if SYMBOLIC.contains(c) {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn simple_fact() {
        assert_eq!(
            toks("foo(bar, 42)."),
            vec![
                Token::Atom("foo".into()),
                Token::FunctorOpen,
                Token::Atom("bar".into()),
                Token::Comma,
                Token::Int(42),
                Token::Close,
                Token::End,
            ]
        );
    }

    #[test]
    fn variables_and_lists() {
        assert_eq!(
            toks("[H|T]"),
            vec![
                Token::OpenList,
                Token::Var("H".into()),
                Token::Bar,
                Token::Var("T".into()),
                Token::CloseList,
            ]
        );
        assert_eq!(toks("_Foo _")[0], Token::Var("_Foo".into()));
    }

    #[test]
    fn symbolic_atoms_and_clause_end() {
        assert_eq!(
            toks("a :- b."),
            vec![
                Token::Atom("a".into()),
                Token::Atom(":-".into()),
                Token::Atom("b".into()),
                Token::End,
            ]
        );
        // '=..' is one symbolic atom; 'X=1.' ends the clause.
        assert_eq!(toks("=..")[0], Token::Atom("=..".into()));
        assert_eq!(
            toks("X=1."),
            vec![
                Token::Var("X".into()),
                Token::Atom("=".into()),
                Token::Int(1),
                Token::End,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a. % line comment\n/* block\ncomment */ b."),
            vec![
                Token::Atom("a".into()),
                Token::End,
                Token::Atom("b".into()),
                Token::End,
            ]
        );
    }

    #[test]
    fn quoted_atoms() {
        assert_eq!(toks("'hello world'")[0], Token::Atom("hello world".into()));
        assert_eq!(toks("'don''t'")[0], Token::Atom("don't".into()));
        assert_eq!(toks("'a\\nb'")[0], Token::Atom("a\nb".into()));
    }

    #[test]
    fn errors_carry_position() {
        let err = tokenize("a.\n  \u{1F980}").unwrap_err();
        match err {
            PsiError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn cut_and_semicolon_are_atoms() {
        assert_eq!(toks("!")[0], Token::Atom("!".into()));
        assert_eq!(toks(";")[0], Token::Atom(";".into()));
    }

    #[test]
    fn integer_overflow_is_reported() {
        assert!(tokenize("99999999999").is_err());
    }
}
