//! The KL0 term AST.

use std::collections::BTreeSet;
use std::fmt;

/// A KL0 (Prolog) term.
///
/// Lists are ordinary structures: `'.'(Head, Tail)` with `[]` as the
/// empty list, exactly as in DEC-10 Prolog. Convenience constructors
/// and accessors hide the encoding.
///
/// ```
/// use kl0::Term;
/// let t = Term::list(vec![Term::int(1), Term::int(2)]);
/// assert_eq!(t.to_string(), "[1,2]");
/// assert_eq!(t.list_elements().unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An atom such as `foo` or `[]`.
    Atom(String),
    /// A 32-bit integer.
    Int(i32),
    /// A named variable. `_` variables are renamed apart by the parser.
    Var(String),
    /// A compound term `name(arg1, ..., argN)` with N ≥ 1.
    Struct(String, Vec<Term>),
}

impl Term {
    /// The atom `[]`.
    pub fn nil() -> Term {
        Term::Atom("[]".to_owned())
    }

    /// An atom.
    pub fn atom(name: &str) -> Term {
        Term::Atom(name.to_owned())
    }

    /// An integer.
    pub fn int(value: i32) -> Term {
        Term::Int(value)
    }

    /// A variable.
    pub fn var(name: &str) -> Term {
        Term::Var(name.to_owned())
    }

    /// A cons cell `[head | tail]`.
    pub fn cons(head: Term, tail: Term) -> Term {
        Term::Struct(".".to_owned(), vec![head, tail])
    }

    /// A proper list of the given elements.
    pub fn list(elements: Vec<Term>) -> Term {
        elements
            .into_iter()
            .rev()
            .fold(Term::nil(), |tail, head| Term::cons(head, tail))
    }

    /// A compound term. With an empty argument vector this degrades to
    /// an atom, which keeps generated code well-formed.
    pub fn compound(name: &str, args: Vec<Term>) -> Term {
        if args.is_empty() {
            Term::Atom(name.to_owned())
        } else {
            Term::Struct(name.to_owned(), args)
        }
    }

    /// Is this term the empty list?
    pub fn is_nil(&self) -> bool {
        matches!(self, Term::Atom(a) if a == "[]")
    }

    /// The functor name and arity of this term, treating atoms as
    /// arity-0 functors. Variables and integers have none.
    pub fn functor(&self) -> Option<(&str, usize)> {
        match self {
            Term::Atom(a) => Some((a, 0)),
            Term::Struct(f, args) => Some((f, args.len())),
            _ => None,
        }
    }

    /// If this term is a proper list, its elements.
    pub fn list_elements(&self) -> Option<Vec<&Term>> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Term::Atom(a) if a == "[]" => return Some(out),
                Term::Struct(f, args) if f == "." && args.len() == 2 => {
                    out.push(&args[0]);
                    cur = &args[1];
                }
                _ => return None,
            }
        }
    }

    /// Collects the distinct variable names of the term, in first
    /// occurrence order.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        self.visit_vars(&mut |name| {
            if seen.insert(name.to_owned()) {
                out.push(name);
            }
        });
        out
    }

    fn visit_vars<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            Term::Var(v) => f(v),
            Term::Struct(_, args) => {
                for a in args {
                    a.visit_vars(f);
                }
            }
            _ => {}
        }
    }

    /// Is the term ground (contains no variables)?
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Struct(_, args) => args.iter().all(Term::is_ground),
            _ => true,
        }
    }

    /// Structurally replaces every variable by what `subst` returns
    /// for it, if anything.
    pub fn substitute(&self, subst: &impl Fn(&str) -> Option<Term>) -> Term {
        match self {
            Term::Var(v) => subst(v).unwrap_or_else(|| self.clone()),
            Term::Struct(f, args) => Term::Struct(
                f.clone(),
                args.iter().map(|a| a.substitute(subst)).collect(),
            ),
            _ => self.clone(),
        }
    }

    /// The indexable shape of the term as a clause-head argument, used
    /// by back ends to build first-argument clause indexes. Cons cells
    /// classify as [`ArgShape::List`] regardless of their elements
    /// (all lists share one switch-on-term bucket).
    ///
    /// ```
    /// use kl0::{ArgShape, Term};
    /// assert_eq!(Term::var("X").arg_shape(), ArgShape::Var);
    /// assert_eq!(Term::nil().arg_shape(), ArgShape::Nil);
    /// assert_eq!(Term::atom("foo").arg_shape(), ArgShape::Atom("foo"));
    /// assert_eq!(Term::int(7).arg_shape(), ArgShape::Int(7));
    /// let cons = Term::cons(Term::int(1), Term::nil());
    /// assert_eq!(cons.arg_shape(), ArgShape::List);
    /// let t = Term::compound("f", vec![Term::var("X"), Term::var("Y")]);
    /// assert_eq!(t.arg_shape(), ArgShape::Struct("f", 2));
    /// ```
    pub fn arg_shape(&self) -> ArgShape<'_> {
        match self {
            Term::Var(_) => ArgShape::Var,
            Term::Atom(a) if a == "[]" => ArgShape::Nil,
            Term::Atom(a) => ArgShape::Atom(a),
            Term::Int(i) => ArgShape::Int(*i),
            Term::Struct(f, args) if f == "." && args.len() == 2 => ArgShape::List,
            Term::Struct(f, args) => ArgShape::Struct(f, args.len()),
        }
    }
}

/// The shape of a term viewed as a first-argument index key (the
/// classification of WAM-style switch-on-term). A [`ArgShape::Var`]
/// head argument unifies with anything, so var-headed clauses belong
/// to every bucket; the other shapes are mutually exclusive at
/// run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArgShape<'a> {
    /// A variable — matches any caller value.
    Var,
    /// The empty list `[]`.
    Nil,
    /// A non-`[]` atom, keyed by name.
    Atom(&'a str),
    /// An integer, keyed by value.
    Int(i32),
    /// A cons cell `'.'(H, T)` — all lists share one bucket.
    List,
    /// A compound term, keyed by functor name and arity.
    Struct(&'a str, usize),
}

fn atom_needs_quotes(name: &str) -> bool {
    // Statically panic-free: wire input reaches Display via error
    // messages, so this path must not be able to unwind.
    let Some(first) = name.chars().next() else {
        return true;
    };
    if first.is_ascii_lowercase() {
        return !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    }
    // Symbolic atoms and special atoms print bare.
    const SPECIAL: &[&str] = &["[]", "!", ";", "{}"];
    if SPECIAL.contains(&name) {
        return false;
    }
    const SYMBOLIC: &str = "+-*/\\^<>=~:.?@#&$";
    !name.chars().all(|c| SYMBOLIC.contains(c))
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Atom(a) => {
                if atom_needs_quotes(a) {
                    write!(f, "'{}'", a.replace('\'', "\\'"))
                } else {
                    f.write_str(a)
                }
            }
            Term::Int(i) => write!(f, "{i}"),
            Term::Var(v) => f.write_str(v),
            Term::Struct(name, args) if name == "." && args.len() == 2 => {
                f.write_str("[")?;
                write!(f, "{}", args[0])?;
                let mut tail = &args[1];
                loop {
                    match tail {
                        Term::Atom(a) if a == "[]" => break,
                        Term::Struct(n2, a2) if n2 == "." && a2.len() == 2 => {
                            write!(f, ",{}", a2[0])?;
                            tail = &a2[1];
                        }
                        other => {
                            write!(f, "|{other}")?;
                            break;
                        }
                    }
                }
                f.write_str("]")
            }
            Term::Struct(name, args) => {
                if atom_needs_quotes(name) {
                    write!(f, "'{}'(", name.replace('\'', "\\'"))?;
                } else {
                    write!(f, "{name}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_construction_and_elements() {
        let l = Term::list(vec![Term::int(1), Term::atom("a"), Term::var("X")]);
        let els = l.list_elements().unwrap();
        assert_eq!(els.len(), 3);
        assert_eq!(els[0], &Term::int(1));
        assert!(Term::nil().list_elements().unwrap().is_empty());
        // improper list
        let improper = Term::cons(Term::int(1), Term::var("T"));
        assert_eq!(improper.list_elements(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Term::list(vec![Term::int(1), Term::int(2)]).to_string(),
            "[1,2]"
        );
        assert_eq!(
            Term::cons(Term::int(1), Term::var("T")).to_string(),
            "[1|T]"
        );
        assert_eq!(
            Term::compound("f", vec![Term::atom("a"), Term::var("B")]).to_string(),
            "f(a,B)"
        );
        assert_eq!(Term::atom("hello world").to_string(), "'hello world'");
        assert_eq!(Term::atom("+").to_string(), "+");
        assert_eq!(Term::atom("[]").to_string(), "[]");
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        let t = Term::compound(
            "f",
            vec![
                Term::var("B"),
                Term::compound("g", vec![Term::var("A"), Term::var("B")]),
            ],
        );
        assert_eq!(t.variables(), vec!["B", "A"]);
    }

    #[test]
    fn groundness() {
        assert!(Term::list(vec![Term::int(1)]).is_ground());
        assert!(!Term::compound("f", vec![Term::var("X")]).is_ground());
    }

    #[test]
    fn substitute_replaces_vars() {
        let t = Term::compound("f", vec![Term::var("X"), Term::var("Y")]);
        let s = t.substitute(&|v| (v == "X").then(|| Term::int(3)));
        assert_eq!(s.to_string(), "f(3,Y)");
    }

    #[test]
    fn compound_with_no_args_is_atom() {
        assert_eq!(Term::compound("a", vec![]), Term::atom("a"));
    }

    #[test]
    fn functor_accessor() {
        assert_eq!(Term::atom("x").functor(), Some(("x", 0)));
        assert_eq!(
            Term::compound("f", vec![Term::int(1)]).functor(),
            Some(("f", 1))
        );
        assert_eq!(Term::var("X").functor(), None);
        assert_eq!(Term::int(3).functor(), None);
    }
}
