//! The dynamic clause database and the generated workload corpus,
//! end to end: assert/asserta/retract with the immediate update view,
//! extended arithmetic, and a replayed seeded corpus program verified
//! against its oracle on all three lanes.
//!
//! Run with: `cargo run --release --example dynamic_db_demo`

use kl0::Program;
use psi_machine::{Machine, MachineConfig};
use psi_workloads::corpus::{generate, CorpusSpec};
use psi_workloads::runner::run_on_psi;

fn main() -> Result<(), psi_core::PsiError> {
    // A task queue on the dynamic database: producers assert, the
    // drain loop retracts until \+ finds the queue empty.
    let program = Program::parse(
        "
        produce(0).
        produce(N) :- N > 0, assert(job(N)), M is N - 1, produce(M).
        drain(0) :- \\+ job(_).
        drain(D) :- retract(job(_)), E is D - 1, drain(E).
        ",
    )?;
    let mut m = Machine::load(&program, MachineConfig::psi())?;

    for s in m.solve("produce(4), job(First)", 1)? {
        println!("after produce(4), first queued: {s}");
    }
    for s in m.solve("asserta(job(99)), job(Head)", 1)? {
        println!("after asserta(job(99)),  head is: {s}");
    }
    for s in m.solve("drain(5), \\+ job(_)", 1)? {
        println!("drained 5 jobs, queue empty:   {s}");
    }
    for s in m.solve("X is (1 << 10) + 7 // 2 - 5 xor 3", 1)? {
        println!("extended arithmetic:           {s}");
    }

    // Replay one seeded corpus program on every lane and check the
    // machine against the generator's host-computed oracle.
    let p = &generate(&CorpusSpec::quick(0x5EED_2026, 7))[3];
    println!(
        "\ncorpus program {} (family {}, seed {:#x}):\n  goal: {}",
        p.workload.name, p.family, p.seed, p.workload.goal
    );
    for (lane, config) in [
        ("fidelity", MachineConfig::psi()),
        ("throughput", MachineConfig::psi_throughput()),
        ("compiled", MachineConfig::psi_compiled()),
    ] {
        let run = run_on_psi(&p.workload, config)?;
        assert_eq!(run.solutions, p.expected, "{lane} diverges from oracle");
        println!(
            "  {lane:<10} {} steps, solutions match oracle: {:?}",
            run.stats.steps, run.solutions
        );
    }
    Ok(())
}
