//! Three-lane execution end to end: run the same workload in the
//! fidelity lane (full measurement, the lane the archived tables come
//! from), the throughput lane (measurement off) and the compiled lane
//! (measurement off + fused dispatch), show that every deterministic
//! quantity matches bit-for-bit, and time the differences.
//!
//! ```sh
//! cargo run --release --example three_lane_demo
//! ```

use psi::psi_machine::MachineConfig;
use psi::psi_workloads::runner::run_on_psi;
use psi::psi_workloads::suite::table1_suite;
use std::time::Instant;

fn main() {
    let entry = table1_suite()
        .into_iter()
        .find(|e| e.workload.name.contains("tarai3"))
        .expect("tarai3 is a Table 1 row");
    let w = &entry.workload;

    let t = Instant::now();
    let fid = run_on_psi(w, MachineConfig::psi()).expect("fidelity run");
    let fid_wall = t.elapsed();

    let t = Instant::now();
    let thr = run_on_psi(w, MachineConfig::psi_throughput()).expect("throughput run");
    let thr_wall = t.elapsed();

    let t = Instant::now();
    let cmp = run_on_psi(w, MachineConfig::psi_compiled()).expect("compiled run");
    let cmp_wall = t.elapsed();

    for (lane, run) in [("throughput", &thr), ("compiled", &cmp)] {
        assert_eq!(fid.solutions, run.solutions, "{lane}: solutions must match");
        assert_eq!(
            fid.stats.steps, run.stats.steps,
            "{lane}: microsteps must match"
        );
        assert_eq!(
            fid.stats.modules, run.stats.modules,
            "{lane}: Table 2 must match"
        );
        assert_eq!(
            fid.stats.branches, run.stats.branches,
            "{lane}: Table 7 must match"
        );
    }

    println!("workload            {}", w.name);
    println!(
        "solutions           {} (identical in all three lanes)",
        fid.solutions.len()
    );
    println!(
        "microsteps          {} (identical in all three lanes)",
        fid.stats.steps
    );
    println!("fidelity wall       {fid_wall:?}");
    println!(
        "throughput wall     {thr_wall:?} ({:.2}x)",
        fid_wall.as_secs_f64() / thr_wall.as_secs_f64()
    );
    println!(
        "compiled wall       {cmp_wall:?} ({:.2}x, {:.2}x over throughput)",
        fid_wall.as_secs_f64() / cmp_wall.as_secs_f64(),
        thr_wall.as_secs_f64() / cmp_wall.as_secs_f64()
    );
    let cache = fid.stats.cache.total();
    println!(
        "skipped in B and C  cache stats (fidelity recorded {} memory commands), WF counts, stall time",
        cache.reads + cache.writes + cache.write_stacks
    );
}
