//! Observability end to end: trace a run through the event ring,
//! export/import the stream as JSON lines, and read the metrics
//! registry's snapshot next to the machine's own statistics.
//!
//! Run with: `cargo run --release --example observability_demo`

use kl0::Program;
use psi_machine::{InterpModule, Machine, MachineConfig};
use psi_obs::{Counter, Histo};
use psi_tools::events::{load_events, save_events, summarize_events};

fn main() -> Result<(), psi_core::PsiError> {
    let w = psi_workloads::contest::queens_all(6);
    let program = Program::parse(&w.source)?;
    let mut machine = Machine::load(&program, MachineConfig::psi())?;

    // 1. Trace a run through the bounded event ring.
    machine.set_event_trace(true);
    let solutions = machine.solve(&w.goal, w.max_solutions)?;
    println!("{}: {} solutions", w.name, solutions.len());

    let dropped = machine.events_dropped();
    let events = machine.take_events();
    let summary = summarize_events(&events);
    println!(
        "\nevent ring ({} events, {dropped} overwritten):",
        events.len()
    );
    println!("  steps spanned     : {}", summary.steps_spanned);
    println!("  dispatches        : {}", summary.dispatches);
    println!("  cache accesses    : {}", summary.cache_accesses);
    println!("    of which hits   : {}", summary.cache_hits);
    println!("  backtracks        : {}", summary.backtracks);
    println!("  governor checks   : {}", summary.governor_checks);

    // 2. Export as JSON lines and load it back — bit-identical.
    let mut encoded = Vec::new();
    save_events(&events, &mut encoded).expect("in-memory export cannot fail");
    let loaded = load_events(encoded.as_slice())?;
    assert_eq!(events, loaded, "export -> load round trip");
    let first = String::from_utf8_lossy(&encoded);
    println!(
        "\nJSON-lines export ({} bytes), first record:",
        encoded.len()
    );
    println!("  {}", first.lines().next().unwrap_or("<empty>"));

    // 3. The metrics snapshot: live counters plus mirrors of the
    //    single-source tallies the tables are generated from.
    let stats = machine.stats();
    let m = machine.metrics_snapshot();
    println!("\nmetrics snapshot vs machine stats:");
    println!("  dispatches        : {}", m.get(Counter::Dispatches));
    println!("  backtracks        : {}", m.get(Counter::Backtracks));
    println!("  solutions         : {}", m.get(Counter::Solutions));
    println!(
        "  cache hit ratio   : {:.1}% (stats: {:.1}%)",
        m.get(Counter::CacheHits) as f64 * 100.0
            / (m.get(Counter::CacheHits) + m.get(Counter::CacheMisses)).max(1) as f64,
        stats.cache.hit_ratio_pct().unwrap_or(100.0),
    );
    assert_eq!(m.total_steps(), stats.steps, "module-step mirror");
    for module in InterpModule::ALL {
        assert_eq!(m.module_steps(module.index()), stats.modules.count(module));
    }
    if let Some(mean) = m.histogram(Histo::BacktrackDepth).mean() {
        println!("  mean choice points remaining after backtrack: {mean:.1}");
    }
    println!("\nsnapshot agrees with MachineStats counter-for-counter.");
    Ok(())
}
