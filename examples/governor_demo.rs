//! Demonstrates the resource governor and the fault-isolated suite
//! runner end to end:
//!
//! ```sh
//! cargo run --release --example governor_demo
//! ```
//!
//! A nonterminating goal is stopped by a step budget and by a
//! wall-clock watchdog, the same machine then solves a real goal,
//! and a governed suite run contains an injected panic to its row.

use psi::kl0::Program;
use psi::psi_machine::{Machine, MachineConfig, ResourceLimits};
use psi::psi_workloads::runner::{run_on_psi, run_suite_governed_with_runner, SuiteOptions};
use psi::psi_workloads::suite::table1_suite;
use std::time::Duration;

fn main() {
    let program = Program::parse(
        "spin :- spin.\n\
         app([], L, L).\n\
         app([H|T], L, [H|R]) :- app(T, L, R).",
    )
    .expect("demo program parses");

    // 1. A step budget turns a runaway goal into a typed error.
    let mut config = MachineConfig::psi();
    config.limits = ResourceLimits::unlimited().with_max_steps(100_000);
    let mut machine = Machine::load(&program, config).expect("loads");
    match machine.solve("spin", 1) {
        Err(e) => println!("step budget:  {e}"),
        Ok(_) => println!("step budget:  unexpectedly solved"),
    }

    // 2. The machine stays reusable after exhaustion.
    match machine.solve("app([1,2], [3], X)", 1) {
        Ok(solutions) => println!(
            "reuse:        X = {} (machine survived exhaustion)",
            solutions[0].binding("X").expect("X is bound")
        ),
        Err(e) => println!("reuse:        failed: {e}"),
    }

    // 3. A wall-clock deadline stops the same spin cooperatively.
    let mut config = MachineConfig::psi();
    config.limits = ResourceLimits::unlimited().with_deadline(Duration::from_millis(25));
    let mut machine = Machine::load(&program, config).expect("loads");
    match machine.solve("spin", 1) {
        Err(e) => println!("watchdog:     {e}"),
        Ok(_) => println!("watchdog:     unexpectedly solved"),
    }

    // 4. A governed suite contains an injected panic to its row.
    let workloads: Vec<_> = table1_suite()
        .into_iter()
        .take(5)
        .map(|e| e.workload)
        .collect();
    let report = run_suite_governed_with_runner(
        &workloads,
        &MachineConfig::psi(),
        &SuiteOptions::default(),
        |w, c| {
            if w.name == "tree traversing" {
                panic!("injected fault for the demo");
            }
            run_on_psi(w, c)
        },
    );
    println!("suite:        {}", report.summary());
    for row in &report.rows {
        println!("  ({}) {:<16} {}", row.index + 1, row.name, row.describe());
    }
}
