//! Figure 1 interactively: trace a workload on the PSI, then replay
//! the trace through cache configurations with PMMS, printing the
//! performance-improvement curve and the §4.2 design studies —
//! finishing with the fork-based live sweep (eleven forks of one
//! consulted template, no trace buffer) to show both roads produce
//! the same curve.
//!
//! Run with: `cargo run --release --example cache_explorer`

use kl0::Program;
use psi_machine::{Machine, MachineConfig};
use psi_tools::{collect, pmms};
use psi_workloads::{runner, window};

fn main() -> Result<(), psi_core::PsiError> {
    let workload = window::window(1);
    let mut config = MachineConfig::psi();
    config.trace_memory = true;

    let (run, mut machine) = runner::run_on_psi_machine(&workload, config)?;
    let trace = machine.take_trace();
    let steps = run.stats.steps;

    let summary = collect::summarize(&trace);
    println!(
        "collected {} accesses over {} steps ({} reads / {} writes / {} pushes)",
        summary.accesses, steps, summary.reads, summary.writes, summary.write_stacks
    );

    println!("\nFigure 1 — improvement ratio vs capacity:");
    for (cap, ratio) in pmms::capacity_sweep(&trace, 200, steps) {
        println!(
            "  {cap:>5} words: {ratio:>6.1}%  {}",
            "#".repeat((ratio / 2.0).max(0.0) as usize)
        );
    }

    let (two, one) = pmms::associativity_study(&trace, 200, steps);
    println!("\ntwo 4KW sets: {two:.1}%   one 4KW set: {one:.1}%   (paper: ~3 points apart)");
    let (si, st) = pmms::policy_study(&trace, 200, steps);
    println!("store-in:     {si:.1}%   store-through: {st:.1}%   (paper: store-in 8% higher)");

    // The same curve without a trace: consult once, fork a machine
    // per capacity and run the goal live.
    let template = Machine::load(&Program::parse(&workload.source)?, MachineConfig::psi())?;
    let forked = pmms::capacity_sweep_forked(
        &template,
        &workload.goal,
        workload.max_solutions,
        std::thread::available_parallelism().map_or(1, usize::from),
    )?;
    let replayed = pmms::capacity_sweep(&trace, 200, steps);
    println!(
        "\nfork-based live sweep over the same capacities: {}",
        if forked == replayed {
            "bit-identical to the trace replay"
        } else {
            "DIVERGED from the trace replay"
        }
    );
    Ok(())
}
