//! Figure 1 interactively: trace a workload on the PSI, then replay
//! the trace through cache configurations with PMMS, printing the
//! performance-improvement curve and the §4.2 design studies.
//!
//! Run with: `cargo run --release --example cache_explorer`

use psi_machine::MachineConfig;
use psi_tools::{collect, pmms};
use psi_workloads::{runner, window};

fn main() -> Result<(), psi_core::PsiError> {
    let workload = window::window(1);
    let mut config = MachineConfig::psi();
    config.trace_memory = true;

    let (run, mut machine) = runner::run_on_psi_machine(&workload, config)?;
    let trace = machine.take_trace();
    let steps = run.stats.steps;

    let summary = collect::summarize(&trace);
    println!(
        "collected {} accesses over {} steps ({} reads / {} writes / {} pushes)",
        summary.accesses, steps, summary.reads, summary.writes, summary.write_stacks
    );

    println!("\nFigure 1 — improvement ratio vs capacity:");
    for (cap, ratio) in pmms::capacity_sweep(&trace, 200, steps) {
        println!(
            "  {cap:>5} words: {ratio:>6.1}%  {}",
            "#".repeat((ratio / 2.0).max(0.0) as usize)
        );
    }

    let (two, one) = pmms::associativity_study(&trace, 200, steps);
    println!("\ntwo 4KW sets: {two:.1}%   one 4KW set: {one:.1}%   (paper: ~3 points apart)");
    let (si, st) = pmms::policy_study(&trace, 200, steps);
    println!("store-in:     {si:.1}%   store-through: {st:.1}%   (paper: store-in 8% higher)");
    Ok(())
}
