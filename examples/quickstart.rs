//! Quickstart: load a KL0 program, run it on the simulated PSI, and
//! inspect the measurements the paper is built on.
//!
//! Run with: `cargo run --example quickstart`

use kl0::Program;
use psi_machine::{Machine, MachineConfig};

fn main() -> Result<(), psi_core::PsiError> {
    let program = Program::parse(
        "
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
        parent(taki, nakashima).
        parent(nakashima, ikeda).
        parent(ikeda, nakajima).
        ",
    )?;

    let mut machine = Machine::load(&program, MachineConfig::psi())?;
    let solutions = machine.solve("ancestor(taki, Who)", 10)?;

    println!("solutions:");
    for s in &solutions {
        println!("  {s}");
    }

    let stats = machine.stats();
    println!("\nmachine measurements (the paper's raw material):");
    println!("  microsteps        : {}", stats.steps);
    println!("  simulated time    : {:.3} ms", stats.time_ms());
    println!(
        "  speed             : {:.1} KLIPS (paper target: 30)",
        stats.lips() / 1e3
    );
    println!(
        "  cache hit ratio   : {:.1} %",
        stats.cache.hit_ratio_pct().unwrap_or(0.0)
    );
    println!(
        "  memory access rate: {:.1} % of steps",
        stats.memory_access_rate_pct()
    );
    let m = stats.modules.percentages();
    println!(
        "  module mix        : control {:.0}% / unify {:.0}% / built {:.0}%",
        m[0], m[1], m[5]
    );
    Ok(())
}
