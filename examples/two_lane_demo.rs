//! Two-lane execution end to end: run the same workload in the
//! fidelity lane (full measurement, the lane the archived tables come
//! from) and the throughput lane (measurement off), show that every
//! deterministic quantity matches bit-for-bit, and time the
//! difference.
//!
//! ```sh
//! cargo run --release --example two_lane_demo
//! ```

use psi::psi_machine::MachineConfig;
use psi::psi_workloads::runner::run_on_psi;
use psi::psi_workloads::suite::table1_suite;
use std::time::Instant;

fn main() {
    let entry = table1_suite()
        .into_iter()
        .find(|e| e.workload.name.contains("tarai3"))
        .expect("tarai3 is a Table 1 row");
    let w = &entry.workload;

    let t = Instant::now();
    let fid = run_on_psi(w, MachineConfig::psi()).expect("fidelity run");
    let fid_wall = t.elapsed();

    let t = Instant::now();
    let thr = run_on_psi(w, MachineConfig::psi_throughput()).expect("throughput run");
    let thr_wall = t.elapsed();

    assert_eq!(fid.solutions, thr.solutions, "solutions must match");
    assert_eq!(fid.stats.steps, thr.stats.steps, "microsteps must match");
    assert_eq!(fid.stats.modules, thr.stats.modules, "Table 2 must match");
    assert_eq!(fid.stats.branches, thr.stats.branches, "Table 7 must match");

    println!("workload            {}", w.name);
    println!(
        "solutions           {} (identical in both lanes)",
        fid.solutions.len()
    );
    println!(
        "microsteps          {} (identical in both lanes)",
        fid.stats.steps
    );
    println!("fidelity wall       {fid_wall:?}");
    println!("throughput wall     {thr_wall:?}");
    println!(
        "speedup             {:.2}x",
        fid_wall.as_secs_f64() / thr_wall.as_secs_f64()
    );
    let cache = fid.stats.cache.total();
    println!(
        "skipped in lane B   cache stats (fidelity recorded {} memory commands), WF counts, stall time",
        cache.reads + cache.writes + cache.write_stacks
    );
}
