//! The HARMONIZER workload as an application: harmonize a melody and
//! print the chords, then show why the paper calls it
//! backtracking-heavy.
//!
//! Run with: `cargo run --release --example harmonizer_demo`

use psi_machine::MachineConfig;
use psi_workloads::{harmonizer, runner};

fn main() -> Result<(), psi_core::PsiError> {
    let melody = harmonizer::melody(11);
    println!("melody (scale degrees): {melody:?}");

    let workload = harmonizer::harmonizer(2);
    let run = runner::run_on_psi(&workload, MachineConfig::psi())?;
    println!("harmonization (final chord first): {}", run.solutions[0]);

    let s = &run.stats;
    let m = s.modules.percentages();
    println!("\nwhy the paper groups HARMONIZER with the unify-heavy programs:");
    println!(
        "  unify module share : {:.1}% of steps (paper Table 2: 46.4%)",
        m[1]
    );
    println!("  trail module share : {:.1}% of steps", m[2]);
    println!(
        "  cache hit ratio    : {:.1}%  (paper Table 5: 98.4%)",
        s.cache.hit_ratio_pct().unwrap_or(0.0)
    );
    Ok(())
}
