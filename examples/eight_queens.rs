//! The paper's Table 1 comparison in miniature: run 8-queens on both
//! the PSI simulator and the DEC-10 WAM baseline and compare.
//!
//! Run with: `cargo run --release --example eight_queens`

use psi_machine::MachineConfig;
use psi_workloads::{contest, runner};

fn main() -> Result<(), psi_core::PsiError> {
    let workload = contest::queens_first(8);

    let psi = runner::run_on_psi(&workload, MachineConfig::psi())?;
    let dec = runner::run_on_dec(&workload)?;

    assert_eq!(psi.solutions, dec.solutions, "engines must agree");
    println!("first placement: {}", psi.solutions[0]);

    let psi_ms = psi.stats.time_ms();
    let dec_ms = dec.time_ns as f64 / 1e6;
    println!(
        "\nPSI : {:>8.2} ms  ({} microsteps, {:.1} KLIPS)",
        psi_ms,
        psi.stats.steps,
        psi.stats.lips() / 1e3
    );
    println!(
        "DEC : {:>8.2} ms  ({} WAM instructions, {} choice points)",
        dec_ms, dec.stats.instructions, dec.stats.choice_points
    );
    println!(
        "DEC/PSI ratio: {:.2}  (paper Table 1 row 7: 1.01)",
        dec_ms / psi_ms
    );
    Ok(())
}
