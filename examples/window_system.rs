//! The WINDOW workload: the PSI-only multi-process, heap-vector,
//! built-in heavy system program, showing the cache-locality effect
//! of process switching the paper reports for WINDOW-2/3.
//!
//! Run with: `cargo run --release --example window_system`

use psi_machine::MachineConfig;
use psi_workloads::{runner, window};

fn main() -> Result<(), psi_core::PsiError> {
    println!(
        "{:<10} {:>10} {:>12} {:>14}",
        "variant", "steps", "hit ratio", "builtin calls"
    );
    for level in 1..=3 {
        let w = window::window(level);
        let run = runner::run_on_psi(&w, MachineConfig::psi())?;
        let s = &run.stats;
        println!(
            "{:<10} {:>10} {:>11.1}% {:>13.1}%",
            w.name,
            s.steps,
            s.cache.hit_ratio_pct().unwrap_or(0.0),
            s.builtin_call_share_pct(),
        );
    }
    println!("\n(the paper's Table 5: window-1 96.4%, window-2 91.9%, window-3 90.7% —");
    println!(" process switching for I/O services lowers locality)");
    Ok(())
}
