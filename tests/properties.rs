//! Property-based tests (proptest) over the core invariants: both
//! engines agree on randomized programs, sorting/reversing match Rust
//! reference implementations, the cache model obeys its invariants
//! against a naive reference simulator, and machine state is restored
//! across backtracking.

use proptest::prelude::*;
use psi::dec10::{DecConfig, DecMachine};
use psi::kl0::Program;
use psi::psi_cache::{Cache, CacheCommand, CacheConfig};
use psi::psi_core::{Address, Area, ProcessId};
use psi::psi_machine::{Machine, MachineConfig};

fn int_list(xs: &[i32]) -> String {
    let parts: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", parts.join(","))
}

const SORT_SRC: &str = "
qsort([], []).
qsort([P|T], S) :-
    partition(T, P, Lo, Hi), qsort(Lo, SLo), qsort(Hi, SHi),
    app(SLo, [P|SHi], S).
partition([], _, [], []).
partition([X|T], P, [X|Lo], Hi) :- X =< P, partition(T, P, Lo, Hi).
partition([X|T], P, Lo, [X|Hi]) :- X > P, partition(T, P, Lo, Hi).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Quicksort on the PSI equals Rust's sort; both engines agree.
    #[test]
    fn sorting_matches_reference(xs in prop::collection::vec(-50i32..50, 0..14)) {
        let program = Program::parse(SORT_SRC).unwrap();
        let goal = format!("qsort({}, S)", int_list(&xs));

        let mut psi = Machine::load(&program, MachineConfig::psi()).unwrap();
        let psi_sols = psi.solve(&goal, 1).unwrap();

        let mut expected = xs.clone();
        expected.sort();
        // Prolog qsort keeps duplicates; compare rendered lists.
        prop_assert_eq!(
            psi_sols[0].to_string(),
            format!("S = {}", int_list(&expected))
        );

        let mut dec = DecMachine::load(&program, DecConfig::dec2060()).unwrap();
        let dec_sols = dec.solve(&goal, 1).unwrap();
        prop_assert_eq!(psi_sols[0].to_string(), dec_sols[0].to_string());
    }

    /// nreverse is an involution and matches Rust's reverse.
    #[test]
    fn nreverse_matches_reference(xs in prop::collection::vec(-9i32..9, 0..12)) {
        let program = Program::parse(SORT_SRC).unwrap();
        let mut m = Machine::load(&program, MachineConfig::psi()).unwrap();
        let sols = m.solve(&format!("nrev({}, R)", int_list(&xs)), 1).unwrap();
        let mut expected = xs.clone();
        expected.reverse();
        prop_assert_eq!(sols[0].to_string(), format!("R = {}", int_list(&expected)));
    }

    /// append splits enumerate exactly n+1 ways and re-concatenate.
    #[test]
    fn append_enumeration_is_complete(xs in prop::collection::vec(0i32..9, 0..8)) {
        let program = Program::parse(SORT_SRC).unwrap();
        let mut m = Machine::load(&program, MachineConfig::psi()).unwrap();
        let sols = m.solve(&format!("app(X, Y, {})", int_list(&xs)), 50).unwrap();
        prop_assert_eq!(sols.len(), xs.len() + 1);
    }

    /// member/2 finds exactly the distinct positions, in order.
    #[test]
    fn member_enumerates_in_order(xs in prop::collection::vec(0i32..5, 1..10)) {
        let src = "
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
";
        let program = Program::parse(src).unwrap();
        let mut m = Machine::load(&program, MachineConfig::psi()).unwrap();
        let sols = m.solve(&format!("member(M, {})", int_list(&xs)), 100).unwrap();
        prop_assert_eq!(sols.len(), xs.len());
        for (s, x) in sols.iter().zip(&xs) {
            prop_assert_eq!(s.to_string(), format!("M = {x}"));
        }
    }

    /// Arithmetic on the PSI matches Rust arithmetic.
    #[test]
    fn arithmetic_matches_rust(a in -500i32..500, b in -500i32..500, c in 1i32..50) {
        let program = Program::parse("").unwrap();
        let mut m = Machine::load(&program, MachineConfig::psi()).unwrap();
        let goal = format!("X is ({a} + {b}) * 2 - {a} // {c}");
        let sols = m.solve(&goal, 1).unwrap();
        let expected = (a.wrapping_add(b)).wrapping_mul(2).wrapping_sub(a / c);
        prop_assert_eq!(sols[0].to_string(), format!("X = {expected}"));
    }

    /// Backtracking restores bindings: after exhausting a two-way
    /// choice, a later alternative sees unbound variables again.
    #[test]
    fn trail_restoration(v in 0i32..100) {
        let src = format!("
p(X) :- q(X), X > {v}.
q({v}).
q(V) :- V is {v} + 1.
");
        let program = Program::parse(&src).unwrap();
        let mut m = Machine::load(&program, MachineConfig::psi()).unwrap();
        let sols = m.solve("p(X)", 5).unwrap();
        prop_assert_eq!(sols.len(), 1);
        prop_assert_eq!(sols[0].to_string(), format!("X = {}", v + 1));
    }
}

// ------------------------------------------------------------------
// Cache model vs a naive reference simulator
// ------------------------------------------------------------------

/// A deliberately simple reference cache: same geometry and LRU
/// policy, structured entirely differently (vector of sets of
/// (tag, last-used) pairs), used to cross-check hit/miss decisions.
struct ReferenceCache {
    sets: Vec<Vec<(u32, u64)>>,
    ways: usize,
    block: u32,
    clock: u64,
}

impl ReferenceCache {
    fn new(config: &CacheConfig) -> ReferenceCache {
        ReferenceCache {
            sets: vec![Vec::new(); config.sets() as usize],
            ways: config.ways as usize,
            block: config.block_words,
            clock: 0,
        }
    }

    fn access(&mut self, addr: Address) -> bool {
        self.clock += 1;
        let block = addr.raw() / self.block;
        let nsets = self.sets.len() as u32;
        let set = &mut self.sets[(block % nsets) as usize];
        let tag = block / nsets;
        if let Some(entry) = set.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.clock;
            return true;
        }
        if set.len() == self.ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(i, _)| i)
                .expect("nonempty");
            set.remove(lru);
        }
        set.push((tag, self.clock));
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Our cache's hit/miss decisions match the reference model for
    /// arbitrary access patterns (reads and write-stacks both allocate,
    /// so the reference treats them identically).
    #[test]
    fn cache_matches_reference_model(
        offsets in prop::collection::vec(0u32..512, 1..300),
        cap_exp in 3u32..10,
    ) {
        let config = CacheConfig::psi_with_capacity(1 << cap_exp);
        let mut ours = Cache::new(config);
        let mut reference = ReferenceCache::new(&config);
        for (i, off) in offsets.iter().enumerate() {
            let addr = Address::new(ProcessId::ZERO, Area::Heap, *off);
            let cmd = if i % 4 == 3 { CacheCommand::WriteStack } else { CacheCommand::Read };
            let out = ours.access(cmd, addr);
            let expected = reference.access(addr);
            prop_assert_eq!(out.hit, expected, "access {} at {}", i, addr);
        }
        let t = ours.stats().total();
        prop_assert_eq!(t.accesses(), offsets.len() as u64);
    }

    /// Store-in never performs worse than store-through on total
    /// stall time (the §4.2 claim, universally).
    #[test]
    fn store_in_dominates_store_through(
        offsets in prop::collection::vec(0u32..256, 1..200),
    ) {
        let mk = |policy_through: bool| {
            let config = if policy_through {
                CacheConfig::psi_store_through()
            } else {
                CacheConfig::psi()
            };
            let mut c = Cache::new(config);
            let mut stall = 0;
            for (i, off) in offsets.iter().enumerate() {
                let addr = Address::new(ProcessId::ZERO, Area::LocalStack, *off);
                let cmd = if i % 2 == 0 { CacheCommand::WriteStack } else { CacheCommand::Read };
                c.advance(200);
                stall += c.access(cmd, addr).stall_ns;
            }
            stall
        };
        prop_assert!(mk(false) <= mk(true));
    }
}
