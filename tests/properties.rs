//! Property-based tests over the core invariants: both engines agree
//! on randomized programs, sorting/reversing match Rust reference
//! implementations, the cache model obeys its invariants against a
//! naive reference simulator, and machine state is restored across
//! backtracking.
//!
//! The cases are driven by a small deterministic xorshift PRNG instead
//! of an external property-testing crate so the suite builds offline;
//! every failure message includes the case seed for replay.

use psi::dec10::{DecConfig, DecMachine};
use psi::kl0::Program;
use psi::psi_cache::{Cache, CacheCommand, CacheConfig};
use psi::psi_core::{Address, Area, ProcessId};
use psi::psi_machine::{Machine, MachineConfig};

/// xorshift64* — tiny, deterministic, good enough for test-case
/// generation.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    /// Uniform value in `lo..hi`.
    fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i32
    }

    fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    fn vec_i32(&mut self, len_lo: usize, len_hi: usize, lo: i32, hi: i32) -> Vec<i32> {
        let n = self.range_usize(len_lo, len_hi);
        (0..n).map(|_| self.range_i32(lo, hi)).collect()
    }
}

fn int_list(xs: &[i32]) -> String {
    let parts: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", parts.join(","))
}

const SORT_SRC: &str = "
qsort([], []).
qsort([P|T], S) :-
    partition(T, P, Lo, Hi), qsort(Lo, SLo), qsort(Hi, SHi),
    app(SLo, [P|SHi], S).
partition([], _, [], []).
partition([X|T], P, [X|Lo], Hi) :- X =< P, partition(T, P, Lo, Hi).
partition([X|T], P, Lo, [X|Hi]) :- X > P, partition(T, P, Lo, Hi).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
";

/// Quicksort on the PSI equals Rust's sort; both engines agree.
#[test]
fn sorting_matches_reference() {
    let program = Program::parse(SORT_SRC).unwrap();
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed);
        let xs = rng.vec_i32(0, 14, -50, 50);
        let goal = format!("qsort({}, S)", int_list(&xs));

        let mut psi = Machine::load(&program, MachineConfig::psi()).unwrap();
        let psi_sols = psi.solve(&goal, 1).unwrap();

        let mut expected = xs.clone();
        expected.sort_unstable();
        // Prolog qsort keeps duplicates; compare rendered lists.
        assert_eq!(
            psi_sols[0].to_string(),
            format!("S = {}", int_list(&expected)),
            "seed {seed}"
        );

        let mut dec = DecMachine::load(&program, DecConfig::dec2060()).unwrap();
        let dec_sols = dec.solve(&goal, 1).unwrap();
        assert_eq!(
            psi_sols[0].to_string(),
            dec_sols[0].to_string(),
            "seed {seed}"
        );
    }
}

/// nreverse is an involution and matches Rust's reverse.
#[test]
fn nreverse_matches_reference() {
    let program = Program::parse(SORT_SRC).unwrap();
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed ^ 0xdead);
        let xs = rng.vec_i32(0, 12, -9, 9);
        let mut m = Machine::load(&program, MachineConfig::psi()).unwrap();
        let sols = m.solve(&format!("nrev({}, R)", int_list(&xs)), 1).unwrap();
        let mut expected = xs.clone();
        expected.reverse();
        assert_eq!(
            sols[0].to_string(),
            format!("R = {}", int_list(&expected)),
            "seed {seed}"
        );
    }
}

/// append splits enumerate exactly n+1 ways and re-concatenate.
#[test]
fn append_enumeration_is_complete() {
    let program = Program::parse(SORT_SRC).unwrap();
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed ^ 0xbeef);
        let xs = rng.vec_i32(0, 8, 0, 9);
        let mut m = Machine::load(&program, MachineConfig::psi()).unwrap();
        let sols = m
            .solve(&format!("app(X, Y, {})", int_list(&xs)), 50)
            .unwrap();
        assert_eq!(sols.len(), xs.len() + 1, "seed {seed}");
    }
}

/// member/2 finds exactly the distinct positions, in order.
#[test]
fn member_enumerates_in_order() {
    let src = "
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
";
    let program = Program::parse(src).unwrap();
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed ^ 0xfeed);
        let xs = rng.vec_i32(1, 10, 0, 5);
        let mut m = Machine::load(&program, MachineConfig::psi()).unwrap();
        let sols = m
            .solve(&format!("member(M, {})", int_list(&xs)), 100)
            .unwrap();
        assert_eq!(sols.len(), xs.len(), "seed {seed}");
        for (s, x) in sols.iter().zip(&xs) {
            assert_eq!(s.to_string(), format!("M = {x}"), "seed {seed}");
        }
    }
}

/// Arithmetic on the PSI matches Rust arithmetic.
#[test]
fn arithmetic_matches_rust() {
    let program = Program::parse("").unwrap();
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed ^ 0xa51);
        let a = rng.range_i32(-500, 500);
        let b = rng.range_i32(-500, 500);
        let c = rng.range_i32(1, 50);
        let mut m = Machine::load(&program, MachineConfig::psi()).unwrap();
        let goal = format!("X is ({a} + {b}) * 2 - {a} // {c}");
        let sols = m.solve(&goal, 1).unwrap();
        let expected = (a.wrapping_add(b)).wrapping_mul(2).wrapping_sub(a / c);
        assert_eq!(
            sols[0].to_string(),
            format!("X = {expected}"),
            "seed {seed}"
        );
    }
}

/// Backtracking restores bindings: after exhausting a two-way choice,
/// a later alternative sees unbound variables again.
#[test]
fn trail_restoration() {
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed ^ 0x7a11);
        let v = rng.range_i32(0, 100);
        let src = format!(
            "
p(X) :- q(X), X > {v}.
q({v}).
q(V) :- V is {v} + 1.
"
        );
        let program = Program::parse(&src).unwrap();
        let mut m = Machine::load(&program, MachineConfig::psi()).unwrap();
        let sols = m.solve("p(X)", 5).unwrap();
        assert_eq!(sols.len(), 1, "seed {seed}");
        assert_eq!(sols[0].to_string(), format!("X = {}", v + 1), "seed {seed}");
    }
}

/// Backtrack-heavy exhaustive enumeration fully restores machine
/// state: re-running the same goal on the same machine yields
/// byte-identical solutions and an identical incremental step count.
/// This is the regression guard for the copy-on-backtrack argument
/// arena in the execution engine: a stale arena entry, a leaked
/// activation, or an unrestored stack top would make the second pass
/// diverge.
#[test]
fn backtracking_restores_machine_state() {
    let program = Program::parse(SORT_SRC).unwrap();
    for seed in 0..12u64 {
        let mut rng = Rng::new(seed ^ 0xac3a);
        let xs = rng.vec_i32(1, 9, 0, 9);
        let goal = format!("app(X, Y, {})", int_list(&xs));
        let mut m = Machine::load(&program, MachineConfig::psi()).unwrap();

        let first: Vec<String> = m
            .solve(&goal, 64)
            .unwrap()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let steps_first = m.stats().steps;

        m.reset_measurement();
        let second: Vec<String> = m
            .solve(&goal, 64)
            .unwrap()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let steps_second = m.stats().steps;

        assert_eq!(first, second, "seed {seed}: solutions diverged on re-run");
        assert_eq!(
            steps_first, steps_second,
            "seed {seed}: step counts diverged on re-run (state not restored)"
        );
    }
}

// ------------------------------------------------------------------
// Cache model vs a naive reference simulator
// ------------------------------------------------------------------

/// A deliberately simple reference cache: same geometry and LRU
/// policy, structured entirely differently (vector of sets of
/// (tag, last-used) pairs), used to cross-check hit/miss decisions.
struct ReferenceCache {
    sets: Vec<Vec<(u32, u64)>>,
    ways: usize,
    block: u32,
    clock: u64,
}

impl ReferenceCache {
    fn new(config: &CacheConfig) -> ReferenceCache {
        ReferenceCache {
            sets: vec![Vec::new(); config.sets() as usize],
            ways: config.ways as usize,
            block: config.block_words,
            clock: 0,
        }
    }

    fn access(&mut self, addr: Address) -> bool {
        self.clock += 1;
        let block = addr.raw() / self.block;
        let nsets = self.sets.len() as u32;
        let set = &mut self.sets[(block % nsets) as usize];
        let tag = block / nsets;
        if let Some(entry) = set.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.clock;
            return true;
        }
        if set.len() == self.ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(i, _)| i)
                .expect("nonempty");
            set.remove(lru);
        }
        set.push((tag, self.clock));
        false
    }
}

/// Our cache's hit/miss decisions match the reference model for
/// arbitrary access patterns (reads and write-stacks both allocate,
/// so the reference treats them identically).
#[test]
fn cache_matches_reference_model() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed ^ 0xcac4e);
        let cap_exp = 3 + (rng.next_u64() % 7) as u32;
        let n = rng.range_usize(1, 300);
        let offsets: Vec<u32> = (0..n).map(|_| (rng.next_u64() % 512) as u32).collect();
        let config = CacheConfig::psi_with_capacity(1 << cap_exp);
        let mut ours = Cache::new(config);
        let mut reference = ReferenceCache::new(&config);
        for (i, off) in offsets.iter().enumerate() {
            let addr = Address::new(ProcessId::ZERO, Area::Heap, *off);
            let cmd = if i % 4 == 3 {
                CacheCommand::WriteStack
            } else {
                CacheCommand::Read
            };
            let out = ours.access(cmd, addr);
            let expected = reference.access(addr);
            assert_eq!(out.hit, expected, "seed {seed}: access {i} at {addr}");
        }
        let t = ours.stats().total();
        assert_eq!(t.accesses(), offsets.len() as u64, "seed {seed}");
    }
}

/// Store-in never performs worse than store-through on total stall
/// time (the §4.2 claim, universally).
#[test]
fn store_in_dominates_store_through() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed ^ 0x570e);
        let n = rng.range_usize(1, 200);
        let offsets: Vec<u32> = (0..n).map(|_| (rng.next_u64() % 256) as u32).collect();
        let mk = |policy_through: bool| {
            let config = if policy_through {
                CacheConfig::psi_store_through()
            } else {
                CacheConfig::psi()
            };
            let mut c = Cache::new(config);
            let mut stall = 0;
            for (i, off) in offsets.iter().enumerate() {
                let addr = Address::new(ProcessId::ZERO, Area::LocalStack, *off);
                let cmd = if i % 2 == 0 {
                    CacheCommand::WriteStack
                } else {
                    CacheCommand::Read
                };
                c.advance(200);
                stall += c.access(cmd, addr).stall_ns;
            }
            stall
        };
        assert!(mk(false) <= mk(true), "seed {seed}");
    }
}

/// Malformed and hostile program text must surface as typed errors —
/// never a panic, never a host stack overflow. This is the contract
/// `psi-server` relies on when it feeds untrusted wire bytes to the
/// KL0 front end.
#[test]
fn malformed_input_parses_to_typed_errors_without_panicking() {
    use psi::kl0::LoweredProgram;
    use psi::psi_core::PsiError;

    // Token soup drawn from an alphabet chosen to stress every lexer
    // and parser path: nesting, operators, quotes, escapes, digits.
    const ALPHABET: &[&str] = &[
        "(",
        ")",
        "[",
        "]",
        "|",
        ",",
        ".",
        ":-",
        ";",
        "->",
        "\\+",
        "=",
        "is",
        "+",
        "-",
        "*",
        "//",
        "mod",
        "!",
        "_",
        "X",
        "Ys",
        "foo",
        "'q u o'",
        "'\\n'",
        "'",
        "\"",
        "\\",
        "0",
        "42",
        "999999999999999999999999",
        " ",
        "\n",
        "\t",
        "%",
        "% comment",
        "\u{3bb}",
        "\0",
    ];
    for seed in 0..600u64 {
        let mut rng = Rng::new(seed ^ 0xbadf00d);
        let n = rng.range_usize(1, 40);
        let mut src = String::new();
        for _ in 0..n {
            src.push_str(ALPHABET[rng.range_usize(0, ALPHABET.len())]);
        }
        // Either outcome is fine; panicking (which would fail this
        // test) or aborting the process (stack overflow) is not.
        match Program::parse(&src) {
            Ok(p) => {
                // Parsed programs must also lower without panicking.
                let _ = LoweredProgram::lower(&p);
            }
            Err(e) => assert!(
                matches!(e, PsiError::Syntax { .. } | PsiError::Compile { .. }),
                "seed {seed}: unexpected error kind {e}"
            ),
        }
    }

    // Mutations of a valid program: truncations and single-byte edits.
    let base = SORT_SRC;
    for seed in 0..300u64 {
        let mut rng = Rng::new(seed ^ 0xc0ffee);
        let mut src = base.to_owned();
        match rng.range_usize(0, 3) {
            0 => src.truncate(rng.range_usize(0, base.len())),
            1 => {
                let at = rng.range_usize(0, src.len());
                if src.is_char_boundary(at) {
                    src.insert(at, b"()[]|,.'\\\"!"[rng.range_usize(0, 11)] as char);
                }
            }
            _ => {
                let at = rng.range_usize(0, src.len());
                if src.is_char_boundary(at) && src.is_char_boundary(at + 1) {
                    src.replace_range(at..at + 1, "'");
                }
            }
        }
        match Program::parse(&src) {
            Ok(p) => {
                let _ = LoweredProgram::lower(&p);
            }
            Err(e) => assert!(
                matches!(e, PsiError::Syntax { .. } | PsiError::Compile { .. }),
                "seed {seed}: unexpected error kind {e}"
            ),
        }
    }
}
