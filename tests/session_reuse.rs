//! The warm-pool contract psi-server relies on: a recycled machine
//! hands its next session exactly what a freshly loaded machine would
//! — bit-identical solutions and statistics, zero stale events,
//! metrics, trace entries or buffered output — while keeping loaded
//! code and the predecode cache warm.

use psi::kl0::Program;
use psi::psi_machine::{Machine, MachineConfig, ResourceLimits};
use psi::psi_obs::Counter;

const SRC: &str = "
qsort([], []).
qsort([P|T], S) :-
    partition(T, P, Lo, Hi), qsort(Lo, SLo), qsort(Hi, SHi),
    app(SLo, [P|SHi], S).
partition([], _, [], []).
partition([X|T], P, [X|Lo], Hi) :- X =< P, partition(T, P, Lo, Hi).
partition([X|T], P, Lo, [X|Hi]) :- X > P, partition(T, P, Lo, Hi).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
";

const GOAL: &str = "qsort([7,3,9,1,5,8,2], S)";

/// The serving profile: throughput lane plus clause indexing — what
/// psi-server runs pooled machines with.
fn serving_config() -> MachineConfig {
    let mut config = MachineConfig::psi_throughput();
    config.clause_indexing = true;
    config
}

/// consult → solve → recycle → solve must be indistinguishable from a
/// fresh machine running the same solve: identical solutions and
/// bit-identical `MachineStats` (all integer counters, so `==` is
/// bit-identity).
#[test]
fn recycled_machine_is_bitwise_identical_to_fresh() {
    for config in [serving_config(), MachineConfig::psi()] {
        let program = Program::parse(SRC).expect("parses");

        let mut fresh = Machine::load(&program, config.clone()).expect("loads");
        let fresh_solutions = fresh.solve(GOAL, 4).expect("solves");

        let mut pooled = Machine::load(&program, config.clone()).expect("loads");
        // Dirty the machine with a different session: extra consulted
        // clauses are kept (code is append-only), run state is not.
        pooled.consult("scratch(1). scratch(2).").expect("consults");
        pooled.solve("scratch(X)", 2).expect("solves");
        pooled.recycle();
        let pooled_solutions = pooled.solve(GOAL, 4).expect("solves");

        assert_eq!(fresh_solutions, pooled_solutions);
        let (f, p) = (fresh.stats(), pooled.stats());
        assert_eq!(f.steps, p.steps, "steps must not leak across recycle");
        assert_eq!(f.modules, p.modules);
        assert_eq!(f.branches, p.branches);
        assert_eq!(f.user_calls, p.user_calls);
        assert_eq!(f.builtin_calls, p.builtin_calls);
        assert_eq!(f.choice_points, p.choice_points);
        assert_eq!(f.indexed_calls, p.indexed_calls);
        assert_eq!(f.index_direct_entries, p.index_direct_entries);
        // In the throughput lane the cache model is off, so the whole
        // stats struct compares bit-identical (the extra consulted
        // code shifts heap addresses, which only the fidelity-lane
        // cache model can see).
        if config.measurement == psi::psi_core::Measurement::Off {
            assert_eq!(f, p);
        }
        // The live counters agree too.
        let (fm, pm) = (fresh.metrics_snapshot(), pooled.metrics_snapshot());
        for c in [
            Counter::Dispatches,
            Counter::Backtracks,
            Counter::Solutions,
            Counter::ChoicePoints,
            Counter::GovernorChecks,
            Counter::GovernorTrips,
        ] {
            assert_eq!(fm.get(c), pm.get(c), "{c:?}");
        }
    }
}

/// A recycled machine hands the next session zero stale observability
/// events, metrics, trace entries or buffered output — even when the
/// previous session traced heavily and never drained its events.
#[test]
fn recycle_drops_all_per_session_state() {
    let program = Program::parse(SRC).expect("parses");
    let mut m = Machine::load(&program, MachineConfig::psi()).expect("loads");
    m.set_event_trace(true);
    m.set_trace_memory(true);
    m.solve("qsort([3,1,2], S)", 1).expect("solves");
    assert!(m.stats().steps > 0);
    // The previous session never took its events or trace.
    m.recycle();
    assert!(m.take_events().is_empty(), "stale events leaked");
    assert!(m.take_trace().is_empty(), "stale trace leaked");
    assert!(m.output().is_empty(), "stale output leaked");
    assert_eq!(m.stats().steps, 0, "stale step tally leaked");
    let snap = m.metrics_snapshot();
    assert_eq!(snap.get(Counter::Dispatches), 0, "stale metrics leaked");
    assert_eq!(snap.get(Counter::Solutions), 0, "stale metrics leaked");
}

/// Stale events must be dropped at every run boundary, not only at
/// recycle: two traced solves followed by one `take_events` see only
/// the second run's stream (same contract as the memory trace).
#[test]
fn each_run_records_a_fresh_event_stream() {
    let program = Program::parse("p(1). p(2). q(X) :- p(X), p(X).").expect("parses");
    let mut m = Machine::load(&program, MachineConfig::psi()).expect("loads");
    m.set_event_trace(true);
    m.solve("q(X)", 9).expect("solves");
    let first = m.take_events().len();
    m.solve("q(X)", 9).expect("solves");
    m.solve("p(X)", 1).expect("solves");
    let last_only = m.take_events();
    assert!(!last_only.is_empty());
    assert!(
        last_only.len() < first,
        "p/1 run must not carry the q/1 runs' events ({} vs {first})",
        last_only.len()
    );
}

/// Regression: `recycle` must restore the machine's load-time
/// budgets. Previously a tenant that tightened its limits via
/// `set_limits` and checked the machine back in left those limits
/// armed, so the next tenant of the warm machine ran under the
/// previous tenant's (possibly hostile, 1-step) budget instead of the
/// server default — a behavioral difference between a warm and a cold
/// checkout that the pool's bit-identity contract forbids.
#[test]
fn recycle_restores_load_time_limits() {
    let program = Program::parse("spin :- spin.\nnat(z). nat(s(X)) :- nat(X).").expect("parses");
    let mut m = Machine::load(&program, serving_config()).expect("loads");

    // Tenant 1 tightens its own budget and trips it.
    m.set_limits(ResourceLimits::unlimited().with_max_steps(100));
    assert!(m.solve("spin", 1).is_err(), "tightened budget must fire");

    // Check-in is recycle alone: the pool cannot know what the
    // departing tenant did to the limits.
    m.recycle();

    // Tenant 2 gets the load-time (unlimited) budgets back; this
    // enumeration costs far more than 100 steps and must succeed.
    let solutions = m
        .solve("nat(X)", 200)
        .expect("stale tenant-1 step cap leaked through recycle");
    assert_eq!(solutions.len(), 200);
}

/// `set_limits` re-tiers a pooled machine per session: tightened
/// budgets fire for the new session, lifted budgets stop firing.
#[test]
fn set_limits_takes_effect_at_the_next_run() {
    let program = Program::parse("spin :- spin.\np(1).").expect("parses");
    let mut m = Machine::load(&program, serving_config()).expect("loads");
    m.set_limits(ResourceLimits::unlimited().with_max_steps(50_000));
    assert!(m.solve("spin", 1).is_err(), "tightened budget must fire");
    m.recycle();
    m.set_limits(ResourceLimits::unlimited());
    assert_eq!(m.solve("p(X)", 2).expect("solves").len(), 1);
}
