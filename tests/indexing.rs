//! Cross-profile equivalence and edge-case tests for first-argument
//! clause indexing (`MachineConfig::clause_indexing`).
//!
//! Indexing is a pure candidate filter: it may only skip clauses
//! whose head unification is guaranteed to fail, so every workload
//! must yield bit-identical solutions under both profiles, with the
//! indexed profile doing no more work than the linear one.

use kl0::Program;
use psi::psi_core::Measurement;
use psi::psi_machine::{Machine, MachineConfig};
use psi::psi_workloads::{runner, suite};
use psi::{kl0, psi_core};

fn machine(src: &str, config: MachineConfig) -> Machine {
    let program = Program::parse(src).unwrap();
    Machine::load(&program, config).unwrap()
}

fn solutions(src: &str, query: &str, config: MachineConfig) -> Vec<String> {
    machine(src, config)
        .solve(query, usize::MAX)
        .unwrap()
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// Both profiles, side by side, for the same program and query.
fn both(src: &str, query: &str) -> (Vec<String>, Vec<String>) {
    (
        solutions(src, query, MachineConfig::psi()),
        solutions(src, query, MachineConfig::psi_indexed()),
    )
}

#[test]
fn table1_suite_profiles_are_equivalent() {
    let entries = suite::table1_suite();
    let workloads: Vec<_> = entries.iter().map(|e| e.workload.clone()).collect();
    let linear = runner::run_suite_parallel(&workloads, &MachineConfig::psi(), Measurement::Full);
    let indexed =
        runner::run_suite_parallel(&workloads, &MachineConfig::psi_indexed(), Measurement::Full);
    for ((entry, lin), idx) in entries.iter().zip(&linear).zip(&indexed) {
        let name = &entry.workload.name;
        let lin = lin
            .as_ref()
            .unwrap_or_else(|e| panic!("{name} linear: {e}"));
        let idx = idx
            .as_ref()
            .unwrap_or_else(|e| panic!("{name} indexed: {e}"));
        assert_eq!(lin.solutions, idx.solutions, "{name}: profiles disagree");
        // The index probe itself costs microsteps (tag dispatch +
        // deref + compare), so a workload whose first arguments
        // barely discriminate can come out marginally worse; allow
        // 2% per row. The aggregate must still improve — see
        // `indexing_reduces_work_measurably`.
        assert!(
            idx.stats.steps <= lin.stats.steps + lin.stats.steps / 50,
            "{name}: indexing increased microsteps ({} > {})",
            idx.stats.steps,
            lin.stats.steps
        );
        assert!(
            idx.stats.choice_points <= lin.stats.choice_points,
            "{name}: indexing pushed more choice points ({} > {})",
            idx.stats.choice_points,
            lin.stats.choice_points
        );
        assert_eq!(
            lin.stats.indexed_calls, 0,
            "{name}: linear profile consulted the index"
        );
    }
}

#[test]
fn indexing_reduces_work_measurably() {
    // Across the whole suite, the indexed profile must do strictly
    // less work in aggregate — not merely "no worse".
    let entries = suite::table1_suite();
    let workloads: Vec<_> = entries.iter().map(|e| e.workload.clone()).collect();
    let linear = runner::run_suite_parallel(&workloads, &MachineConfig::psi(), Measurement::Full);
    let indexed =
        runner::run_suite_parallel(&workloads, &MachineConfig::psi_indexed(), Measurement::Full);
    let sum = |runs: &[psi_core::Result<runner::PsiRun>], f: fn(&runner::PsiRun) -> u64| {
        runs.iter().map(|r| f(r.as_ref().unwrap())).sum::<u64>()
    };
    let (lin_steps, idx_steps) = (
        sum(&linear, |r| r.stats.steps),
        sum(&indexed, |r| r.stats.steps),
    );
    let (lin_cps, idx_cps) = (
        sum(&linear, |r| r.stats.choice_points),
        sum(&indexed, |r| r.stats.choice_points),
    );
    assert!(
        idx_steps < lin_steps,
        "expected fewer total microsteps ({idx_steps} vs {lin_steps})"
    );
    assert!(
        idx_cps < lin_cps,
        "expected fewer total choice points ({idx_cps} vs {lin_cps})"
    );
}

#[test]
fn hot_path_stays_allocation_free_under_indexing() {
    for config in [MachineConfig::psi(), MachineConfig::psi_indexed()] {
        let w = psi::psi_workloads::contest::queens_all(6);
        let (_, machine) = runner::run_on_psi_machine(&w, config).unwrap();
        assert_eq!(machine.hot_path_alloc_count(), 0);
    }
}

#[test]
fn all_candidates_filtered_out_fails_cleanly() {
    // No clause of p/1 has an integer first argument the query can
    // match: the indexed profile finds zero candidates and must fail
    // the call (not panic or error), exactly like the linear scan.
    let (lin, idx) = both("p(1). p(2).", "p(3)");
    assert!(lin.is_empty());
    assert_eq!(lin, idx);
    // Same with a key type no clause uses at all.
    let (lin, idx) = both("p(1). p(2).", "p(foo)");
    assert!(lin.is_empty());
    assert_eq!(lin, idx);
}

#[test]
fn filtered_call_still_backtracks_into_earlier_goals() {
    // The generator g/1 must keep producing alternatives after the
    // indexed call to p/1 fails with zero candidates.
    let src = "g(1). g(2). g(3). p(3). ok(X) :- g(X), p(X).";
    let (lin, idx) = both(src, "ok(X)");
    assert_eq!(lin, vec!["X = 3"]);
    assert_eq!(lin, idx);
}

#[test]
fn unbound_first_argument_enumerates_all_clauses() {
    let (lin, idx) = both("p(a). p(b). p([]). p([x]). p(f(1)). p(7).", "p(X)");
    assert_eq!(lin.len(), 6);
    assert_eq!(lin, idx);
}

#[test]
fn keys_dispatch_by_shape() {
    let src = "k(a, atom). k([], nil). k([_|_], list). k(f(_), struct). k(9, int).";
    for (query, expect) in [
        ("k(a, R)", "R = atom"),
        ("k([], R)", "R = nil"),
        ("k([1,2], R)", "R = list"),
        ("k(f(0), R)", "R = struct"),
        ("k(9, R)", "R = int"),
    ] {
        let (lin, idx) = both(src, query);
        assert_eq!(lin, vec![expect.to_owned()], "{query}");
        assert_eq!(lin, idx, "{query}");
    }
}

#[test]
fn var_headed_clause_is_reachable_from_every_key() {
    let src = "p(a, hit_a). p(X, any(X)). p(b, hit_b).";
    for (query, expect) in [
        ("p(a, R)", vec!["R = hit_a", "R = any(a)"]),
        ("p(b, R)", vec!["R = any(b)", "R = hit_b"]),
        ("p(zz, R)", vec!["R = any(zz)"]),
        ("p(42, R)", vec!["R = any(42)"]),
    ] {
        let (lin, idx) = both(src, query);
        let expect: Vec<String> = expect.into_iter().map(str::to_owned).collect();
        assert_eq!(lin, expect, "{query}");
        assert_eq!(lin, idx, "{query}");
    }
}

#[test]
fn undefined_predicate_errors_on_both_profiles() {
    for config in [MachineConfig::psi(), MachineConfig::psi_indexed()] {
        let mut m = machine("p(1) :- missing(1).", config);
        assert!(m.solve("p(1)", 1).is_err());
    }
}

#[test]
fn single_survivor_enters_directly_without_choice_point() {
    // Three clauses, fully discriminated by first argument: every
    // indexed call has exactly one candidate, so a deterministic
    // query pushes no choice point at all.
    let src = "c(red, 1). c(green, 2). c(blue, 3).";
    let mut m = machine(src, MachineConfig::psi_indexed());
    let sols = m.solve("c(green, N)", usize::MAX).unwrap();
    assert_eq!(sols.len(), 1);
    let stats = m.stats();
    assert_eq!(stats.choice_points, 0);
    assert_eq!(stats.indexed_calls, 1);
    assert_eq!(stats.index_direct_entries, 1);
    // The linear profile pushes one (three clauses, clause 1 taken).
    let mut m = machine(src, MachineConfig::psi());
    m.solve("c(green, N)", usize::MAX).unwrap();
    let stats = m.stats();
    assert!(stats.choice_points > 0);
    assert_eq!(stats.indexed_calls, 0);
    assert_eq!(stats.index_direct_entries, 0);
}

#[test]
fn metrics_snapshot_mirrors_indexing_counters() {
    use psi::psi_obs::Counter;
    let mut m = machine(
        "c(red, 1). c(green, 2). c(blue, 3).",
        MachineConfig::psi_indexed(),
    );
    m.solve("c(blue, N)", usize::MAX).unwrap();
    let stats = m.stats();
    let snap = m.metrics_snapshot();
    assert_eq!(snap.get(Counter::ChoicePoints), stats.choice_points);
    assert_eq!(snap.get(Counter::IndexedCalls), stats.indexed_calls);
    assert_eq!(
        snap.get(Counter::IndexDirectEntries),
        stats.index_direct_entries
    );
}
