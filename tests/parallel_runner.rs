//! The parallel suite runner must be an exact drop-in for the serial
//! loop, and the interpreter hot path must not allocate: both claims
//! are regression-tested here because the paper's tables depend on
//! event-exact counters.

use psi::psi_core::Measurement;
use psi::psi_machine::{Machine, MachineConfig};
use psi::psi_workloads::runner::{run_on_psi, run_suite_parallel_with};
use psi::psi_workloads::suite::table1_suite;
use psi::psi_workloads::Workload;

/// `run_suite_parallel` must produce byte-identical solutions and
/// bit-identical statistics to running each workload serially: every
/// workload gets a fresh machine, so parallelism must not perturb a
/// single event counter feeding Tables 2–7.
#[test]
fn parallel_suite_matches_serial_bit_for_bit() {
    let workloads: Vec<Workload> = table1_suite().into_iter().map(|e| e.workload).collect();
    let config = MachineConfig::psi();

    let serial: Vec<_> = workloads
        .iter()
        .map(|w| run_on_psi(w, config.clone()).expect("serial run succeeds"))
        .collect();
    let parallel = run_suite_parallel_with(&workloads, &config, Measurement::Full, 4);

    assert_eq!(serial.len(), parallel.len());
    for ((w, s), p) in workloads.iter().zip(&serial).zip(parallel) {
        let p = p.expect("parallel run succeeds");
        assert_eq!(s.solutions, p.solutions, "{}: solutions differ", w.name);
        // MachineStats is integer counters throughout, so `==` is
        // bit-identity.
        assert_eq!(s.stats, p.stats, "{}: stats differ", w.name);
    }
}

/// Worker count must not change results either (1 worker = the serial
/// path inside `par_map`).
#[test]
fn parallel_suite_is_thread_count_invariant() {
    let workloads: Vec<Workload> = table1_suite()
        .into_iter()
        .take(6)
        .map(|e| e.workload)
        .collect();
    let config = MachineConfig::psi();
    let one = run_suite_parallel_with(&workloads, &config, Measurement::Full, 1);
    let many = run_suite_parallel_with(&workloads, &config, Measurement::Full, 8);
    for (a, b) in one.into_iter().zip(many) {
        let a = a.expect("runs succeed");
        let b = b.expect("runs succeed");
        assert_eq!(a.solutions, b.solutions);
        assert_eq!(a.stats, b.stats);
    }
}

/// The interpreter hot path performs zero host heap (re)allocations on
/// a deterministic nreverse run: activations and choice points are
/// `Copy`, goal arguments go through pre-reserved scratch buffers and
/// the copy-on-backtrack argument arena, and none of those structures
/// outgrows its reservation.
#[test]
fn nreverse_hot_path_is_allocation_free() {
    let w = psi::psi_workloads::contest::nreverse(30);
    let program = psi::kl0::Program::parse(&w.source).expect("parses");
    let mut machine = Machine::load(&program, MachineConfig::psi()).expect("loads");
    let solutions = machine.solve(&w.goal, w.max_solutions).expect("solves");
    assert!(!solutions.is_empty());
    assert_eq!(
        machine.hot_path_alloc_count(),
        0,
        "interpreter hot path must not allocate on nreverse(30)"
    );
}

/// Backtracking-heavy search must also stay allocation-free — the
/// choice-point stack and argument arena see real churn here.
#[test]
fn queens_hot_path_is_allocation_free() {
    let w = psi::psi_workloads::contest::queens_all(6);
    let program = psi::kl0::Program::parse(&w.source).expect("parses");
    let mut machine = Machine::load(&program, MachineConfig::psi()).expect("loads");
    let solutions = machine.solve(&w.goal, w.max_solutions).expect("solves");
    assert_eq!(solutions.len(), 4, "6-queens has 4 solutions");
    assert_eq!(
        machine.hot_path_alloc_count(),
        0,
        "interpreter hot path must not allocate on 6-queens"
    );
}
