//! Cross-crate integration tests: every workload must produce
//! identical solutions on the PSI simulator and the DEC-10 baseline,
//! and the measured statistics must satisfy the paper's structural
//! invariants.

use psi::psi_machine::MachineConfig;
use psi::psi_workloads::{contest, harmonizer, parsers, puzzle, runner, suite};

fn assert_engines_agree(w: &psi::psi_workloads::Workload) {
    let psi_run = runner::run_on_psi(w, MachineConfig::psi())
        .unwrap_or_else(|e| panic!("{} on PSI: {e}", w.name));
    let dec_run = runner::run_on_dec(w).unwrap_or_else(|e| panic!("{} on DEC: {e}", w.name));
    assert_eq!(
        psi_run.solutions, dec_run.solutions,
        "{}: engines disagree",
        w.name
    );
    assert!(
        !psi_run.solutions.is_empty(),
        "{}: workload found no solution",
        w.name
    );
}

#[test]
fn contest_programs_agree_across_engines() {
    for w in [
        contest::nreverse(12),
        contest::quick_sort(16),
        contest::tree_traversing(4),
        contest::lisp_tarai(5, 3, 0),
        contest::lisp_fib(8),
        contest::lisp_nreverse(8),
        contest::queens_first(6),
        contest::queens_all(5),
        contest::reverse_function(10, 3),
        contest::slow_reverse(8),
    ] {
        assert_engines_agree(&w);
    }
}

#[test]
fn parsers_agree_across_engines() {
    assert_engines_agree(&parsers::bup(1));
    assert_engines_agree(&parsers::lcp(1));
    assert_engines_agree(&parsers::lcp(2));
}

#[test]
fn harmonizer_and_puzzle_agree_across_engines() {
    assert_engines_agree(&harmonizer::harmonizer(1));
    assert_engines_agree(&puzzle::eight_puzzle(3));
}

#[test]
fn window_runs_on_psi_with_processes() {
    for level in 1..=3 {
        let w = psi::psi_workloads::window::window(level);
        assert!(!w.runs_on_dec());
        let run = runner::run_on_psi(&w, MachineConfig::psi())
            .unwrap_or_else(|e| panic!("{} on PSI: {e}", w.name));
        assert_eq!(run.solutions.len(), 1, "{}", w.name);
    }
}

#[test]
fn stats_satisfy_structural_invariants() {
    for w in [
        contest::nreverse(12),
        puzzle::eight_puzzle(3),
        parsers::bup(1),
        harmonizer::harmonizer(1),
    ] {
        let run = runner::run_on_psi(&w, MachineConfig::psi()).unwrap();
        let s = &run.stats;
        // Table 2 columns cover all steps.
        assert_eq!(s.modules.total(), s.steps, "{}", w.name);
        // Table 7 rows cover all steps.
        assert_eq!(s.branches.total(), s.steps, "{}", w.name);
        // Table 4 shares sum to 100.
        let shares: f64 = s.cache.area_shares_pct().iter().sum();
        assert!((shares - 100.0).abs() < 1e-6, "{}: {shares}", w.name);
        // Hits never exceed accesses.
        let t = s.cache.total();
        assert!(t.hits() <= t.accesses(), "{}", w.name);
        // Time = steps * 200ns + stalls.
        assert_eq!(s.time_ns, s.steps * 200 + s.stall_ns, "{}", w.name);
        // The paper's §4.2 observation: roughly one in five steps is a
        // memory access (generous band).
        let rate = s.memory_access_rate_pct();
        assert!(rate > 10.0 && rate < 45.0, "{}: {rate}", w.name);
        // Branch ops appear on most steps (paper: 77-83%).
        let br = s.branches.branch_share_pct();
        assert!(br > 55.0 && br < 95.0, "{}: {br}", w.name);
    }
}

#[test]
fn paper_qualitative_claims_hold() {
    // §3.1's headline: DEC wins on indexable list code, PSI wins on
    // unification+backtracking application code.
    let nrev = suite::table1_suite().into_iter().next().unwrap();
    let psi = runner::run_on_psi(&nrev.workload, MachineConfig::psi()).unwrap();
    let dec = runner::run_on_dec(&nrev.workload).unwrap();
    let nrev_ratio = (dec.time_ns as f64) / (psi.stats.time_ns as f64);
    assert!(nrev_ratio < 1.0, "DEC must win nreverse ({nrev_ratio:.2})");

    let harm = harmonizer::harmonizer(1);
    let psi = runner::run_on_psi(&harm, MachineConfig::psi()).unwrap();
    let dec = runner::run_on_dec(&harm).unwrap();
    let harm_ratio = (dec.time_ns as f64) / (psi.stats.time_ns as f64);
    assert!(
        harm_ratio > 1.0,
        "PSI must win harmonizer ({harm_ratio:.2})"
    );

    let lcp = parsers::lcp(2);
    let psi = runner::run_on_psi(&lcp, MachineConfig::psi()).unwrap();
    let dec = runner::run_on_dec(&lcp).unwrap();
    let lcp_ratio = (dec.time_ns as f64) / (psi.stats.time_ns as f64);
    assert!(lcp_ratio < 1.0, "DEC must win LCP ({lcp_ratio:.2})");
    assert!(
        lcp_ratio < harm_ratio && nrev_ratio < harm_ratio,
        "crossover ordering"
    );
}

#[test]
fn cache_hit_ratios_match_papers_magnitude() {
    // "the hit ratio for application programs was found higher than
    // 96%" — BUP and harmonizer are the paper's flagship rows.
    for w in [parsers::bup(2), harmonizer::harmonizer(1)] {
        let run = runner::run_on_psi(&w, MachineConfig::psi()).unwrap();
        let hit = run.stats.cache.hit_ratio_pct().unwrap();
        assert!(hit > 95.0, "{}: hit ratio {hit}", w.name);
    }
}

#[test]
fn process_switching_lowers_hit_ratio() {
    // Table 5: window-2/3 hit ratios are lower than window-1.
    let h1 = runner::run_on_psi(&psi::psi_workloads::window::window(1), MachineConfig::psi())
        .unwrap()
        .stats
        .cache
        .hit_ratio_pct()
        .unwrap();
    let h3 = runner::run_on_psi(&psi::psi_workloads::window::window(3), MachineConfig::psi())
        .unwrap()
        .stats
        .cache
        .hit_ratio_pct()
        .unwrap();
    assert!(
        h3 < h1,
        "process switching must lower locality: window-1 {h1:.2}% vs window-3 {h3:.2}%"
    );
}
