//! Fault isolation end to end: resource budgets must turn runaway
//! executions into typed, recoverable errors; the governed suite
//! runner must contain a bad workload to its own row while every
//! other row stays bit-identical to a serial run. Both properties
//! protect the paper's tables — a single divergent workload may cost
//! one row, never the report.

use psi::kl0::Program;
use psi::psi_core::{PsiError, Resource};
use psi::psi_machine::{Machine, MachineConfig, ResourceLimits};
use psi::psi_workloads::runner::{
    run_on_psi, run_suite_governed_with_runner, Outcome, SuiteOptions,
};
use psi::psi_workloads::suite::table1_suite;
use psi::psi_workloads::Workload;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

/// A program with one nonterminating predicate, one predicate that
/// grows a structure forever, and one well-behaved predicate — so a
/// single machine can be driven into each failure mode and then shown
/// to still work.
const MIXED: &str = "spin :- spin.\n\
                     grow(L) :- grow([x|L]).\n\
                     app([], L, L).\n\
                     app([H|T], L, [H|R]) :- app(T, L, R).";

fn machine_with(limits: ResourceLimits) -> Machine {
    let program = Program::parse(MIXED).expect("parses");
    let mut config = MachineConfig::psi();
    config.limits = limits;
    Machine::load(&program, config).expect("loads")
}

/// A nonterminating goal must come back as a typed step exhaustion
/// within one governor interval's slack of the configured budget —
/// not hang, not panic.
#[test]
fn nonterminating_goal_exhausts_step_budget() {
    let limit = 200_000u64;
    let mut machine = machine_with(ResourceLimits::unlimited().with_max_steps(limit));
    match machine.solve("spin", 1) {
        Err(PsiError::ResourceExhausted {
            resource: Resource::Steps,
            limit: l,
            consumed,
        }) => {
            assert_eq!(l, limit);
            assert!(consumed >= limit, "consumed {consumed} < limit {limit}");
            // The governor checks periodically, so exhaustion may land
            // late — but only by a bounded overshoot.
            assert!(
                consumed < limit * 2,
                "governor let the run overshoot: {consumed} vs {limit}"
            );
        }
        other => panic!("expected step exhaustion, got {other:?}"),
    }
}

/// After a `ResourceExhausted` the machine is reusable: the next
/// `solve` starts from a clean run state and computes the right
/// answer with the same budget still in force.
#[test]
fn machine_survives_exhaustion_and_solves_again() {
    let mut machine = machine_with(ResourceLimits::unlimited().with_max_steps(100_000));
    assert!(matches!(
        machine.solve("spin", 1),
        Err(PsiError::ResourceExhausted { .. })
    ));
    let solutions = machine
        .solve("app([1,2], [3], X)", 1)
        .expect("fresh goal solves after exhaustion");
    assert_eq!(solutions[0].binding("X").unwrap().to_string(), "[1,2,3]");
}

/// The wall-clock deadline is a cooperative watchdog inside the
/// governor: a spinning goal must stop soon after the deadline with a
/// typed wall-clock exhaustion.
#[test]
fn wall_clock_deadline_stops_a_spinning_goal() {
    let mut machine =
        machine_with(ResourceLimits::unlimited().with_deadline(Duration::from_millis(20)));
    let started = Instant::now();
    match machine.solve("spin", 1) {
        Err(PsiError::ResourceExhausted {
            resource: Resource::WallClockMs,
            ..
        }) => {}
        other => panic!("expected wall-clock exhaustion, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "watchdog took far too long to fire"
    );
    // And the machine still works afterwards.
    let solutions = machine.solve("app([], [9], X)", 1).expect("solves");
    assert_eq!(solutions[0].binding("X").unwrap().to_string(), "[9]");
}

/// A goal that grows a structure without bound must trip a word
/// budget (which area fills first is an interpreter detail — any
/// non-step, non-clock resource is correct), and the machine must
/// stay reusable.
#[test]
fn unbounded_structure_growth_trips_a_word_budget() {
    let mut limits = ResourceLimits::unlimited();
    limits.max_heap_words = Some(1 << 20);
    limits.max_global_words = Some(1 << 16);
    limits.max_local_words = Some(1 << 16);
    // Backstop so a miscounted budget fails the test instead of
    // hanging it.
    limits.max_steps = Some(50_000_000);
    let mut machine = machine_with(limits);
    match machine.solve("grow([])", 1) {
        Err(PsiError::ResourceExhausted {
            resource, consumed, ..
        }) => {
            assert!(
                !matches!(resource, Resource::Steps | Resource::WallClockMs),
                "expected a word budget, got {resource} ({consumed} consumed)"
            );
        }
        other => panic!("expected word-budget exhaustion, got {other:?}"),
    }
    let solutions = machine.solve("app([1], [2], X)", 1).expect("solves");
    assert_eq!(solutions[0].binding("X").unwrap().to_string(), "[1,2]");
}

/// The headline containment property: inject a panic into exactly one
/// Table 1 workload and run the full 19-row suite in parallel. The
/// poisoned row must report `Panicked` with its workload context, and
/// the other 18 rows must complete with stats bit-identical to
/// serial, un-governed runs.
#[test]
fn injected_panic_costs_one_row_and_preserves_the_rest() {
    let workloads: Vec<Workload> = table1_suite().into_iter().map(|e| e.workload).collect();
    let poisoned = "quick sort";
    let config = MachineConfig::psi();
    let options = SuiteOptions {
        threads: 4,
        deadline: None,
        max_retries: 0,
    };
    let report = run_suite_governed_with_runner(&workloads, &config, &options, |w, c| {
        if w.name == poisoned {
            panic!("injected fault");
        }
        run_on_psi(w, c)
    });

    assert_eq!(report.rows.len(), workloads.len());
    assert_eq!(report.ok_count(), workloads.len() - 1);
    assert_eq!(report.panicked_count(), 1);
    assert_eq!(
        report.summary(),
        format!(
            "{} ok, 0 exhausted, 0 timed out, 0 failed, 1 panicked",
            workloads.len() - 1
        )
    );

    for (w, row) in workloads.iter().zip(&report.rows) {
        if w.name == poisoned {
            match &row.outcome {
                Outcome::Panicked { detail } => {
                    assert!(detail.contains(poisoned), "context missing: {detail}");
                    assert!(
                        detail.contains("injected fault"),
                        "payload missing: {detail}"
                    );
                }
                other => panic!("poisoned row should panic, got {}", other.label()),
            }
            continue;
        }
        let governed = row
            .run()
            .unwrap_or_else(|| panic!("{} should be ok", w.name));
        let serial = run_on_psi(w, config.clone()).expect("serial run succeeds");
        assert_eq!(serial.solutions, governed.solutions, "{}", w.name);
        // MachineStats is integer counters throughout, so `==` is
        // bit-identity.
        assert_eq!(serial.stats, governed.stats, "{}", w.name);
    }
}

/// Retries are bounded and only spent on transient outcomes: a
/// workload that times out on every attempt is retried exactly
/// `max_retries` times and then reported `TimedOut`.
#[test]
fn timeouts_are_retried_a_bounded_number_of_times() {
    let workloads = vec![Workload::new("always-late", String::new(), "g".into())];
    let config = MachineConfig::psi();
    let options = SuiteOptions {
        threads: 1,
        deadline: Some(Duration::from_millis(5)),
        max_retries: 2,
    };
    let calls = AtomicU32::new(0);
    let report = run_suite_governed_with_runner(&workloads, &config, &options, |_, c| {
        calls.fetch_add(1, Ordering::Relaxed);
        Err(PsiError::ResourceExhausted {
            resource: Resource::WallClockMs,
            limit: c.limits.deadline.map(|d| d.as_millis() as u64).unwrap_or(0),
            consumed: 6,
        })
    });
    let row = &report.rows[0];
    assert!(
        matches!(row.outcome, Outcome::TimedOut { .. }),
        "{:?}",
        row.outcome
    );
    assert_eq!(row.attempts, 3, "max_retries=2 means 3 attempts");
    assert_eq!(calls.load(Ordering::Relaxed), 3);
}

/// The deadline is checked at solution and backtrack boundaries, not
/// only every `GOVERNOR_INTERVAL` dispatches: a query whose whole
/// search fits inside one governor interval still notices an expired
/// deadline before starting the hunt for the next solution. (Before
/// this boundary check, a zero deadline here returned both solutions.)
#[test]
fn deadline_is_checked_at_solution_and_backtrack_boundaries() {
    let program = Program::parse("p(1). p(2).").expect("parses");
    let mut config = MachineConfig::psi();
    config.limits = ResourceLimits::unlimited().with_deadline(Duration::ZERO);
    let mut machine = Machine::load(&program, config).expect("loads");
    match machine.solve("p(X)", 2) {
        Err(PsiError::ResourceExhausted {
            resource: Resource::WallClockMs,
            ..
        }) => {}
        other => panic!("expected wall-clock exhaustion at a boundary, got {other:?}"),
    }
    // The machine remains reusable, and with the deadline lifted the
    // same query completes.
    machine.set_limits(ResourceLimits::unlimited());
    assert_eq!(machine.solve("p(X)", 2).expect("solves").len(), 2);
}

/// The documented overshoot bound: a backtrack-heavy solution
/// generator (every few dispatches produce a solution or a backtrack)
/// stops within a small multiple of its deadline in host time — the
/// QoS guarantee psi-server's per-session deadlines rely on.
#[test]
fn deadline_overshoot_is_bounded_in_host_time() {
    let program = Program::parse("nat(z). nat(s(X)) :- nat(X).").expect("parses");
    let mut config = MachineConfig::psi();
    config.limits = ResourceLimits::unlimited().with_deadline(Duration::from_millis(30));
    let mut machine = Machine::load(&program, config).expect("loads");
    let started = Instant::now();
    match machine.solve("nat(X)", usize::MAX) {
        Err(PsiError::ResourceExhausted {
            resource: Resource::WallClockMs,
            ..
        }) => {}
        other => panic!("expected wall-clock exhaustion, got {other:?}"),
    }
    // Generous CI slack; the point is "milliseconds past the
    // deadline", not "until some unrelated budget fires".
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "overshoot unbounded: {:?}",
        started.elapsed()
    );
}
