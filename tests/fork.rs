//! Fork equivalence: a [`Machine::fork`] of a consulted, never-run
//! template must be observationally indistinguishable from a fresh
//! `Machine::load` of the same source — same solutions, same full
//! [`MachineStats`] (including cache and work-file counters, since
//! fork shares only *immutable* state), and the same zero
//! hot-path-allocation guarantee — across the whole Table 1 suite, in
//! both execution lanes and both indexing profiles. The snapshot
//! round trip (`psi_tools::snapshot`) must preserve the same
//! bit-identity through serialization.

use psi::kl0::Program;
use psi::psi_cache::CacheConfig;
use psi::psi_core::Measurement;
use psi::psi_machine::{Machine, MachineConfig, MachineStats};
use psi::psi_tools::snapshot::{restore, snapshot};
use psi::psi_workloads::suite::table1_suite;
use psi::psi_workloads::Workload;

/// The four configuration corners the serving stack uses: each lane
/// with and without first-argument clause indexing.
fn corners() -> Vec<(&'static str, MachineConfig)> {
    let mut throughput_indexed = MachineConfig::psi_indexed();
    throughput_indexed.measurement = Measurement::Off;
    vec![
        ("fidelity", MachineConfig::psi()),
        ("fidelity/indexed", MachineConfig::psi_indexed()),
        ("throughput", MachineConfig::psi_throughput()),
        ("throughput/indexed", throughput_indexed),
    ]
}

/// Runs a workload's goal on an already-consulted machine.
fn run_goal(machine: &mut Machine, w: &Workload) -> (Vec<String>, MachineStats) {
    let solutions = if w.background.is_empty() {
        machine
            .solve(&w.goal, w.max_solutions)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
    } else {
        let bg: Vec<&str> = w.background.iter().map(String::as_str).collect();
        machine
            .run_session(&w.goal, &bg)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
    };
    let rendered = solutions.iter().map(ToString::to_string).collect();
    (rendered, machine.stats())
}

#[test]
fn fork_matches_fresh_on_all_table1_rows_in_every_corner() {
    for (label, config) in corners() {
        for entry in table1_suite() {
            let w = &entry.workload;
            let program =
                Program::parse(&w.source).unwrap_or_else(|e| panic!("{} [{label}]: {e}", w.name));
            let template = Machine::load(&program, config.clone())
                .unwrap_or_else(|e| panic!("{} [{label}]: {e}", w.name));
            let mut forked = template
                .fork()
                .unwrap_or_else(|e| panic!("{} [{label}]: fork failed: {e}", w.name));
            let mut fresh = Machine::load(&program, config.clone()).unwrap();

            let (fork_solutions, fork_stats) = run_goal(&mut forked, w);
            let (fresh_solutions, fresh_stats) = run_goal(&mut fresh, w);
            assert_eq!(
                fork_solutions, fresh_solutions,
                "{} [{label}]: forked solutions differ",
                w.name
            );
            assert_eq!(
                fork_stats, fresh_stats,
                "{} [{label}]: forked machine stats differ bit-for-bit",
                w.name
            );
            assert_eq!(
                forked.hot_path_alloc_count(),
                0,
                "{} [{label}]: fork allocated on the hot path",
                w.name
            );
            assert!(
                template.is_pristine(),
                "{} [{label}]: running a fork dirtied its template",
                w.name
            );
        }
    }
}

#[test]
fn fork_after_run_or_recycle_is_a_typed_error() {
    let program = Program::parse("p(1). p(2).").unwrap();
    let mut m = Machine::load(&program, MachineConfig::psi()).unwrap();
    assert!(m.is_pristine());
    m.solve("p(X)", 9).unwrap();
    let err = m.fork().unwrap_err();
    assert_eq!(err.wire_kind(), "fork_after_run");
    assert_eq!(err.wire_code(), 10);

    // Recycle clears run state but not compiled query stubs, so a
    // recycled machine is still not a template.
    m.recycle();
    let err = m.fork().unwrap_err();
    assert_eq!(
        err.wire_kind(),
        "fork_after_run",
        "recycle must not launder a run machine into a template"
    );
}

#[test]
fn forks_are_independent_of_each_other() {
    let program = Program::parse("q(a). q(b). r(X) :- q(X).").unwrap();
    let template = Machine::load(&program, MachineConfig::psi_indexed()).unwrap();
    let mut one = template.fork().unwrap();
    let mut two = template.fork().unwrap();
    assert_eq!(one.solve("q(X)", 9).unwrap().len(), 2);
    // The sibling fork is unaffected by the first fork's run and
    // matches a fresh machine exactly.
    let mut fresh = Machine::load(&program, MachineConfig::psi_indexed()).unwrap();
    assert_eq!(
        two.solve("r(Y)", 9).unwrap(),
        fresh.solve("r(Y)", 9).unwrap()
    );
    assert_eq!(two.stats(), fresh.stats());
}

#[test]
fn fork_with_cache_changes_geometry_but_not_answers() {
    let entry = &table1_suite()[0];
    let w = &entry.workload;
    let program = Program::parse(&w.source).unwrap();
    let template = Machine::load(&program, MachineConfig::psi()).unwrap();
    let mut small = template
        .fork_with_cache(Some(CacheConfig::psi_with_capacity(64)))
        .unwrap();
    let mut stock = template.fork().unwrap();
    let (small_solutions, small_stats) = run_goal(&mut small, w);
    let (stock_solutions, stock_stats) = run_goal(&mut stock, w);
    assert_eq!(small_solutions, stock_solutions, "{}", w.name);
    assert_eq!(small_stats.steps, stock_stats.steps, "{}", w.name);
    assert!(
        small_stats.stall_ns > stock_stats.stall_ns,
        "{}: a 64-word cache should stall more than the stock 8KW one",
        w.name
    );
}

/// Snapshot → restore → fork preserves bit-identity on a real Table 1
/// row: the restored template's fork runs exactly like a fork of the
/// original.
#[test]
fn snapshot_round_trip_preserves_fork_bit_identity() {
    let entry = &table1_suite()[0];
    let w = &entry.workload;
    let program = Program::parse(&w.source).unwrap();
    let template = Machine::load(&program, MachineConfig::psi_indexed()).unwrap();

    let line = snapshot(&template, &w.source).unwrap();
    let restored = restore(&line).unwrap();
    assert!(restored.is_pristine());

    let mut from_original = template.fork().unwrap();
    let mut from_restored = restored.fork().unwrap();
    let (a_solutions, a_stats) = run_goal(&mut from_original, w);
    let (b_solutions, b_stats) = run_goal(&mut from_restored, w);
    assert_eq!(a_solutions, b_solutions, "{}", w.name);
    assert_eq!(a_stats, b_stats, "{}", w.name);
}

#[test]
fn snapshot_version_mismatch_is_a_typed_error_not_a_panic() {
    let entry = &table1_suite()[0];
    let w = &entry.workload;
    let program = Program::parse(&w.source).unwrap();
    let template = Machine::load(&program, MachineConfig::psi()).unwrap();
    let line = snapshot(&template, &w.source).unwrap();
    let wrong = line.replace("psi-snapshot-v1", "psi-snapshot-v2");
    let err = restore(&wrong).unwrap_err();
    assert_eq!(err.wire_kind(), "snapshot");
    assert_eq!(err.wire_code(), 11);
    assert!(err.to_string().contains("psi-snapshot-v2"), "{err}");
}

/// Satellite of the sweep engine: `fork_with_cache` must honor the
/// *full* geometry grid, not just capacity. Every valid (ways × block
/// × write policy × write-stack handling) combination round-trips
/// through the fork — the forked machine reports exactly the
/// requested configuration, its derived geometry (blocks, sets) is
/// arithmetically consistent, and the run is step- and
/// solution-identical to the stock fork (geometry changes stalls,
/// never semantics or step counts).
#[test]
fn fork_with_cache_round_trips_every_geometry_combination() {
    use psi::psi_cache::WritePolicy;
    let entry = &table1_suite()[0];
    let w = &entry.workload;
    let program = Program::parse(&w.source).unwrap();
    let template = Machine::load(&program, MachineConfig::psi()).unwrap();
    let mut stock = template.fork().unwrap();
    let (stock_solutions, stock_stats) = run_goal(&mut stock, w);
    let stock_accesses = stock_stats.cache.total().accesses();

    let mut combinations = 0;
    for ways in [1u32, 2, 4] {
        for block_words in [2u32, 4, 8] {
            for policy in [WritePolicy::StoreIn, WritePolicy::StoreThrough] {
                for write_stack_no_fetch in [false, true] {
                    // Small enough to differ from stock, large enough
                    // to be valid for every (ways, block) pair; sets
                    // stay a power of two because everything else is.
                    let geometry = CacheConfig {
                        capacity_words: 256,
                        block_words,
                        ways,
                        policy,
                        write_stack_no_fetch,
                        ..CacheConfig::psi()
                    };
                    let label = format!(
                        "{}w{ways}b{block_words}p{policy:?}s{write_stack_no_fetch}",
                        w.name
                    );
                    let mut forked = template.fork_with_cache(Some(geometry)).unwrap();

                    // The fork reports exactly the requested geometry…
                    let reported = forked.config().cache.unwrap_or_else(|| {
                        panic!("{label}: fork_with_cache(Some) must report a cache")
                    });
                    assert_eq!(reported, geometry, "{label}");
                    // …with consistent derived numbers.
                    assert_eq!(reported.blocks(), 256 / block_words, "{label}");
                    assert_eq!(reported.sets(), 256 / block_words / ways, "{label}");
                    assert!(reported.sets().is_power_of_two(), "{label}");

                    // And the run is semantics- and step-identical to
                    // stock: geometry moves stalls only.
                    let (solutions, stats) = run_goal(&mut forked, w);
                    assert_eq!(solutions, stock_solutions, "{label}");
                    assert_eq!(stats.steps, stock_stats.steps, "{label}");
                    assert_eq!(
                        stats.cache.total().accesses(),
                        stock_accesses,
                        "{label}: access count is a function of execution, not geometry"
                    );
                    combinations += 1;
                }
            }
        }
    }
    assert_eq!(combinations, 3 * 3 * 2 * 2);

    // The cache-less fork is part of the same surface: no cache
    // config, same answers and access count (the uncached bus still
    // tallies every access — as a miss, since there is nothing to
    // hit).
    let mut uncached = template.fork_with_cache(None).unwrap();
    assert!(uncached.config().cache.is_none());
    let (solutions, stats) = run_goal(&mut uncached, w);
    assert_eq!(solutions, stock_solutions);
    assert_eq!(stats.steps, stock_stats.steps);
    assert_eq!(stats.cache.total().accesses(), stock_accesses);
    assert_eq!(stats.cache.total().hits(), 0);
}
