//! The observability layer end to end: event tracing through the
//! machine, export → load round trips with identical summaries,
//! metrics snapshots that agree with the single-source tallies, and
//! the zero-cost guarantee when everything is switched off.

use psi::kl0::Program;
use psi::psi_core::EventKind;
use psi::psi_machine::{Machine, MachineConfig, ResourceLimits};
use psi::psi_obs::Counter;
use psi::psi_tools::events::{load_events, save_events, summarize_events};

fn machine_for(workload: &psi::psi_workloads::Workload, config: MachineConfig) -> Machine {
    let program = Program::parse(&workload.source).expect("parses");
    Machine::load(&program, config).expect("loads")
}

/// Event tracing captures the machine's dispatch, cache and backtrack
/// activity in one chronological stream, and the JSON-lines exporter
/// round-trips it bit-identically (so summaries match exactly).
#[test]
fn machine_events_round_trip_through_exporter() {
    let w = psi::psi_workloads::contest::queens_all(6);
    let mut machine = machine_for(&w, MachineConfig::psi());
    machine.set_event_trace(true);
    let solutions = machine.solve(&w.goal, w.max_solutions).expect("solves");
    assert_eq!(solutions.len(), 4);

    let events = machine.take_events();
    assert!(!events.is_empty(), "tracing on: events must be captured");
    let kinds: std::collections::HashSet<EventKind> = events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&EventKind::Dispatch));
    assert!(kinds.contains(&EventKind::CacheAccess));
    assert!(kinds.contains(&EventKind::Backtrack), "queens backtracks");
    for pair in events.windows(2) {
        assert!(pair[0].step <= pair[1].step, "one chronological stream");
    }

    let mut buf = Vec::new();
    save_events(&events, &mut buf).expect("exports");
    let loaded = load_events(buf.as_slice()).expect("loads");
    assert_eq!(events, loaded, "export → load is bit-identical");
    assert_eq!(
        summarize_events(&events),
        summarize_events(&loaded),
        "identical summary after the round trip"
    );
}

/// The metrics snapshot mirrors the single-source tallies (module
/// steps, cache counters) and carries the live counters the hooks
/// record — all consistent with `MachineStats`.
#[test]
fn metrics_snapshot_agrees_with_machine_stats() {
    let w = psi::psi_workloads::contest::queens_all(6);
    let mut machine = machine_for(&w, MachineConfig::psi());
    let solutions = machine.solve(&w.goal, w.max_solutions).expect("solves");
    let stats = machine.stats();
    let m = machine.metrics_snapshot();

    assert_eq!(m.total_steps(), stats.steps, "module-step mirror");
    for module in psi::psi_machine::InterpModule::ALL {
        assert_eq!(
            m.module_steps(module.index()),
            stats.modules.count(module),
            "module {module} mirror"
        );
    }
    let total = stats.cache.total();
    assert_eq!(
        m.get(Counter::CacheHits) + m.get(Counter::CacheMisses),
        total.accesses()
    );
    assert_eq!(m.get(Counter::CacheReads), total.reads);
    assert_eq!(m.get(Counter::CacheWrites), total.writes);
    assert_eq!(m.get(Counter::CacheWriteStacks), total.write_stacks);
    assert_eq!(m.get(Counter::Solutions), solutions.len() as u64);
    assert!(m.get(Counter::Dispatches) > 0);
    assert!(m.get(Counter::Backtracks) > 0, "queens backtracks");
    assert_eq!(m.get(Counter::GovernorTrips), 0, "unlimited run");
}

/// Governor activity is visible in the metrics: a budgeted run that
/// exhausts its steps records checks and exactly one trip.
#[test]
fn governor_trip_is_counted_and_traced() {
    let program = Program::parse("spin :- spin.").expect("parses");
    let mut config = MachineConfig::psi();
    config.limits = ResourceLimits::unlimited().with_max_steps(50_000);
    let mut machine = Machine::load(&program, config).expect("loads");
    machine.set_event_trace(true);
    machine.solve("spin", 1).expect_err("budget must trip");

    let m = machine.metrics_snapshot();
    assert!(m.get(Counter::GovernorChecks) > 0);
    assert_eq!(m.get(Counter::GovernorTrips), 1);

    let events = machine.take_events();
    let trips: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::GovernorTrip)
        .collect();
    assert_eq!(trips.len(), 1);
    assert_eq!(
        psi::psi_core::Resource::from_code(trips[0].a),
        Some(psi::psi_core::Resource::Steps)
    );
}

/// With tracing and event recording off (the default), the hot path
/// stays allocation-free — the observability layer's counters are
/// fixed arrays and its emission sites cost one branch.
#[test]
fn disabled_observability_keeps_hot_path_allocation_free() {
    for w in [
        psi::psi_workloads::contest::nreverse(30),
        psi::psi_workloads::contest::queens_all(6),
    ] {
        let mut machine = machine_for(&w, MachineConfig::psi());
        assert!(!machine.config().trace_events);
        assert!(!machine.config().trace_memory);
        let solutions = machine.solve(&w.goal, w.max_solutions).expect("solves");
        assert!(!solutions.is_empty());
        assert_eq!(
            machine.hot_path_alloc_count(),
            0,
            "hot path must not allocate on {} with observability off",
            w.name
        );
        assert!(machine.take_events().is_empty(), "tracing off: no events");
    }
}

/// Event tracing must not perturb the measured simulation: steps,
/// simulated time and cache statistics are bit-identical with tracing
/// on and off (the ring only observes).
#[test]
fn event_tracing_does_not_perturb_measurements() {
    let w = psi::psi_workloads::contest::nreverse(30);

    let mut plain = machine_for(&w, MachineConfig::psi());
    plain.solve(&w.goal, w.max_solutions).expect("solves");
    let baseline = plain.stats();

    let mut traced = machine_for(&w, MachineConfig::psi());
    traced.set_event_trace(true);
    traced.solve(&w.goal, w.max_solutions).expect("solves");
    let observed = traced.stats();

    assert_eq!(baseline, observed, "observation must not change the run");
}
