//! Property tests for the generated workload corpus: every seeded
//! program must produce its host-computed oracle solutions,
//! bit-identically, on all three lanes × both indexing profiles, and
//! a corpus run under the governed suite layer must contain a
//! panicking row to that row alone.

use psi_machine::MachineConfig;
use psi_workloads::corpus::{generate, CorpusSpec};
use psi_workloads::runner::{run_on_psi, run_suite_governed_with_runner, Outcome, SuiteOptions};
use psi_workloads::Workload;

/// The six measurement cells: three lanes × {linear, indexed}.
fn cells() -> Vec<(&'static str, MachineConfig)> {
    let mut out = Vec::new();
    for (lane, base) in [
        ("fidelity", MachineConfig::psi()),
        ("throughput", MachineConfig::psi_throughput()),
        ("compiled", MachineConfig::psi_compiled()),
    ] {
        for indexing in [false, true] {
            let mut config = base.clone();
            config.clause_indexing = indexing;
            let name: &'static str = match (lane, indexing) {
                ("fidelity", false) => "fidelity/linear",
                ("fidelity", true) => "fidelity/indexed",
                ("throughput", false) => "throughput/linear",
                ("throughput", true) => "throughput/indexed",
                ("compiled", false) => "compiled/linear",
                _ => "compiled/indexed",
            };
            out.push((name, config));
        }
    }
    out
}

#[test]
fn hundred_seeded_programs_match_oracle_on_every_cell() {
    let corpus = generate(&CorpusSpec::quick(0xC0FFEE, 100));
    assert_eq!(corpus.len(), 100);
    for p in &corpus {
        // Step counts must agree across lanes *within* an indexing
        // profile; indexing itself legitimately changes the count.
        let mut ref_steps: [Option<u64>; 2] = [None, None];
        for (cell, config) in cells() {
            let indexed = cell.ends_with("indexed");
            let run = run_on_psi(&p.workload, config).unwrap_or_else(|e| {
                panic!("{} [{}] seed {:#x}: {e}", p.workload.name, cell, p.seed)
            });
            assert_eq!(
                run.solutions, p.expected,
                "{} [{}] seed {:#x}: solutions diverge from oracle",
                p.workload.name, cell, p.seed
            );
            match ref_steps[indexed as usize] {
                None => ref_steps[indexed as usize] = Some(run.stats.steps),
                Some(r) => assert_eq!(
                    run.stats.steps, r,
                    "{} [{}] seed {:#x}: step count diverges across lanes",
                    p.workload.name, cell, p.seed
                ),
            }
        }
    }
}

#[test]
fn corpus_runs_under_the_governed_suite() {
    let corpus = generate(&CorpusSpec::quick(0xBEEF, 21));
    let workloads: Vec<Workload> = corpus.iter().map(|p| p.workload.clone()).collect();
    let report = psi_workloads::runner::run_suite_governed(
        &workloads,
        &MachineConfig::psi_compiled(),
        &SuiteOptions::default(),
    );
    assert!(report.all_ok(), "{}", report.summary());
    for (row, p) in report.rows.iter().zip(&corpus) {
        match &row.outcome {
            Outcome::Ok(run) => assert_eq!(run.solutions, p.expected, "{}", row.name),
            other => panic!("{}: unexpected outcome {other:?}", row.name),
        }
    }
}

#[test]
fn panicking_generated_row_degrades_only_itself() {
    let corpus = generate(&CorpusSpec::quick(0xDEAD, 14));
    let workloads: Vec<Workload> = corpus.iter().map(|p| p.workload.clone()).collect();
    let victim = workloads[5].name.clone();
    let options = SuiteOptions {
        threads: 4,
        ..SuiteOptions::default()
    };
    let report =
        run_suite_governed_with_runner(&workloads, &MachineConfig::psi(), &options, |w, c| {
            if w.name == victim {
                panic!("injected corpus fault");
            }
            run_on_psi(w, c)
        });
    assert_eq!(report.panicked_count(), 1, "{}", report.summary());
    assert_eq!(report.ok_count(), workloads.len() - 1);
    for (row, p) in report.rows.iter().zip(&corpus) {
        if row.name == victim {
            assert!(matches!(&row.outcome, Outcome::Panicked { detail }
                if detail.contains("injected corpus fault")));
        } else {
            match &row.outcome {
                Outcome::Ok(run) => assert_eq!(run.solutions, p.expected, "{}", row.name),
                other => panic!("{}: unexpected outcome {other:?}", row.name),
            }
        }
    }
}
