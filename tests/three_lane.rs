//! Three-lane equivalence: the compiled lane
//! (`MachineConfig::psi_compiled()` — fused ops, superinstruction
//! chaining, packetized microstep charging) must be observationally
//! identical to both the fidelity lane and the throughput lane for
//! everything the paper's tables derive from microstep accounting —
//! solutions and bindings, total steps, per-module tallies (Table 2),
//! branch-field tallies (Table 7), call/choice-point counts and
//! indexing stats — on every Table 1 row, under both indexing
//! profiles, including resource-budget trip points and panic
//! containment.

use psi::kl0::Program;
use psi::psi_core::{Measurement, PsiError, Resource};
use psi::psi_machine::{Machine, MachineConfig, MachineStats, ResourceLimits};
use psi::psi_obs::Counter;
use psi::psi_workloads::runner::{
    run_on_psi, run_on_psi_machine, run_suite_governed_with_runner, Outcome, SuiteOptions,
};
use psi::psi_workloads::suite::table1_suite;
use psi::psi_workloads::Workload;

/// Everything that must be bit-identical across lanes (same view as
/// `tests/two_lane.rs`): `wf`, `cache`, `stall_ns` and `time_ns`
/// legitimately differ when measurement is off.
fn deterministic_view(stats: &MachineStats) -> impl PartialEq + std::fmt::Debug {
    (
        stats.steps,
        stats.modules,
        stats.branches,
        stats.user_calls,
        stats.builtin_calls,
        stats.choice_points,
        stats.indexed_calls,
        stats.index_direct_entries,
    )
}

/// The three lanes in comparison order.
fn lanes() -> [(&'static str, MachineConfig); 3] {
    [
        ("fidelity", MachineConfig::psi()),
        ("throughput", MachineConfig::psi_throughput()),
        ("compiled", MachineConfig::psi_compiled()),
    ]
}

#[test]
fn all_table1_rows_are_lane_invariant_across_three_lanes() {
    for entry in table1_suite() {
        let w = &entry.workload;
        let (fid, _) = run_on_psi_machine(w, MachineConfig::psi())
            .unwrap_or_else(|e| panic!("{} fidelity: {e}", w.name));
        for (lane, config) in [
            ("throughput", MachineConfig::psi_throughput()),
            ("compiled", MachineConfig::psi_compiled()),
        ] {
            let (run, machine) =
                run_on_psi_machine(w, config).unwrap_or_else(|e| panic!("{} {lane}: {e}", w.name));
            assert_eq!(
                fid.solutions, run.solutions,
                "{}: solutions differ ({lane} vs fidelity)",
                w.name
            );
            assert_eq!(
                deterministic_view(&fid.stats),
                deterministic_view(&run.stats),
                "{}: deterministic counters differ ({lane} vs fidelity)",
                w.name
            );
            assert_eq!(
                machine.hot_path_alloc_count(),
                0,
                "{}: {lane} lane allocated on the hot path",
                w.name
            );
        }
    }
}

/// Same property under the first-argument-indexing profile: the lane
/// flags and the indexing flag must compose without interference.
#[test]
fn indexed_profile_is_lane_invariant_across_three_lanes() {
    for entry in table1_suite() {
        let w = &entry.workload;
        let fid = run_on_psi(w, MachineConfig::psi_indexed())
            .unwrap_or_else(|e| panic!("{} fidelity/indexed: {e}", w.name));
        for (lane, mut config) in lanes() {
            if lane == "fidelity" {
                continue;
            }
            config.clause_indexing = true;
            let run =
                run_on_psi(w, config).unwrap_or_else(|e| panic!("{} {lane}/indexed: {e}", w.name));
            assert_eq!(fid.solutions, run.solutions, "{} ({lane})", w.name);
            assert_eq!(
                deterministic_view(&fid.stats),
                deterministic_view(&run.stats),
                "{}: indexed deterministic counters differ ({lane} vs fidelity)",
                w.name
            );
        }
    }
}

/// Bindings, not just rendered solution lines: one query with a named
/// variable through all three lanes, comparing the bound terms.
#[test]
fn solution_bindings_are_lane_invariant_across_three_lanes() {
    let src = "app([], L, L).\n\
               app([H|T], L, [H|R]) :- app(T, L, R).\n\
               perm([], []).\n\
               perm(L, [H|T]) :- sel(H, L, R), perm(R, T).\n\
               sel(X, [X|T], T).\n\
               sel(X, [H|T], [H|R]) :- sel(X, T, R).";
    let program = Program::parse(src).expect("parses");
    let reference: Vec<Option<String>> = {
        let mut m = Machine::load(&program, MachineConfig::psi()).expect("loads");
        let solutions = m.solve("perm([1,2,3], P)", usize::MAX).expect("solves");
        assert_eq!(solutions.len(), 6);
        solutions
            .iter()
            .map(|s| s.binding("P").map(|b| b.to_string()))
            .collect()
    };
    for (lane, config) in lanes() {
        let mut m = Machine::load(&program, config).expect("loads");
        let solutions = m.solve("perm([1,2,3], P)", usize::MAX).expect("solves");
        let got: Vec<Option<String>> = solutions
            .iter()
            .map(|s| s.binding("P").map(|b| b.to_string()))
            .collect();
        assert_eq!(reference, got, "bindings diverge in the {lane} lane");
    }
}

/// A fused superinstruction covering N microsteps must charge all N
/// before its constituent's governor tick, so the budget trips at the
/// same typed error with the same consumption in all three lanes.
#[test]
fn step_budget_exhaustion_is_lane_invariant_across_three_lanes() {
    let program = Program::parse("spin :- spin.").expect("parses");
    let limit = 150_000u64;
    let mut consumed_by_lane = Vec::new();
    for (lane, mut config) in lanes() {
        config.limits = ResourceLimits::unlimited().with_max_steps(limit);
        let mut machine = Machine::load(&program, config).expect("loads");
        match machine.solve("spin", 1) {
            Err(PsiError::ResourceExhausted {
                resource: Resource::Steps,
                limit: l,
                consumed,
            }) => {
                assert_eq!(l, limit, "{lane}");
                consumed_by_lane.push(consumed);
            }
            other => panic!("{lane}: expected step exhaustion, got {other:?}"),
        }
    }
    assert_eq!(
        consumed_by_lane[0], consumed_by_lane[1],
        "throughput lane tripped the step budget at a different point"
    );
    assert_eq!(
        consumed_by_lane[0], consumed_by_lane[2],
        "compiled lane tripped the step budget at a different point"
    );
}

/// A builtin-heavy chain actually exercises the superinstruction path:
/// the compiled lane must report fused dispatches and fusion hits,
/// while its deterministic statistics still match fidelity.
#[test]
fn compiled_lane_fuses_builtin_chains() {
    let src = "count(N, N).\n\
               count(I, N) :- I < N, J is I + 1, count(J, N).";
    let goal = "count(0, 500)";
    let program = Program::parse(src).expect("parses");
    let mut fid = Machine::load(&program, MachineConfig::psi()).expect("loads");
    let mut cmp = Machine::load(&program, MachineConfig::psi_compiled()).expect("loads");
    assert_eq!(
        fid.solve(goal, 1).expect("solves"),
        cmp.solve(goal, 1).expect("solves")
    );
    assert_eq!(
        deterministic_view(&fid.stats()),
        deterministic_view(&cmp.stats())
    );
    let snap = cmp.metrics_snapshot();
    assert!(
        snap.get(Counter::FusedDispatches) > 0,
        "compiled lane never dispatched from the fused array"
    );
    assert!(
        snap.get(Counter::FusionHits) > 0,
        "builtin chain produced no superinstruction continuations"
    );
    // The fused array, not the predecode cache, serves the hot path.
    assert_eq!(
        snap.get(Counter::PredecodeMisses),
        0,
        "compiled lane fell back to the predecode path"
    );
    // The other lanes report no fused activity at all.
    assert_eq!(fid.metrics_snapshot().get(Counter::FusedDispatches), 0);
}

/// Regression (fork × append-only consult): `sync_code` grows the
/// shared predecode cache and fused program behind `Arc::make_mut`.
/// A fork followed by an incremental consult — in either order, in
/// both fast lanes — must never serve a stale entry for any code word,
/// and must stay bit-identical to a machine freshly loaded with the
/// same final source.
#[test]
fn fork_then_consult_never_serves_stale_decode_or_fused_entries() {
    let base = "gen(z).\ngen(s(X)) :- gen(X).";
    let extra = "top(T) :- gen(T), big(T).\n\
                 big(s(s(s(_)))).";
    let combined = format!("{base}\n{extra}");
    let goal = "top(T)";
    for (lane, config) in lanes() {
        if lane == "fidelity" {
            continue; // decode/fused caches exist only off the fidelity lane
        }
        let reference = {
            let program = Program::parse(&combined).expect("parses");
            let mut m = Machine::load(&program, config.clone()).expect("loads");
            let solutions = m.solve(goal, 2).expect("solves");
            (solutions, format!("{:?}", deterministic_view(&m.stats())))
        };

        // Direction 1: fork first, consult the extra clauses in the
        // fork. The fork's consult must detach its own caches, not
        // mutate the template's.
        let program = Program::parse(base).expect("parses");
        let template = Machine::load(&program, config.clone()).expect("loads");
        let mut fork = template.fork().expect("forks");
        fork.consult(extra).expect("consults");
        let solutions = fork.solve(goal, 2).expect("solves");
        assert_eq!(reference.0, solutions, "{lane}: fork-then-consult diverged");
        assert_eq!(
            reference.1,
            format!("{:?}", deterministic_view(&fork.stats())),
            "{lane}: fork-then-consult stats diverged"
        );

        // The template is untouched and still forks the base program.
        let mut plain = template.fork().expect("template still pristine");
        assert_eq!(
            plain.solve("gen(s(z))", 1).expect("solves").len(),
            1,
            "{lane}: template corrupted by the fork's consult"
        );

        // Direction 2: consult the extra clauses in the template
        // *before* forking; the fork inherits the full caches and
        // must see every entry, including ones the template already
        // warmed by... never running (templates cannot run), so warm
        // the fork itself twice to cover the warmed-cache path too.
        let program = Program::parse(base).expect("parses");
        let mut template = Machine::load(&program, config.clone()).expect("loads");
        template.consult(extra).expect("consults");
        let mut fork = template.fork().expect("forks");
        let solutions = fork.solve(goal, 2).expect("solves");
        assert_eq!(reference.0, solutions, "{lane}: consult-then-fork diverged");
        let again = fork.solve(goal, 2).expect("re-solves");
        assert_eq!(reference.0, again, "{lane}: warmed re-solve diverged");
    }
}

/// Panic containment composes with the compiled lane: one injected
/// fault costs exactly its own row, and the surviving rows carry the
/// same deterministic counters as serial fidelity runs.
#[test]
fn fault_isolation_holds_in_the_compiled_lane() {
    let workloads: Vec<Workload> = table1_suite().into_iter().map(|e| e.workload).collect();
    let poisoned = "quick sort";
    let config = MachineConfig::psi_compiled();
    let options = SuiteOptions {
        threads: 4,
        deadline: None,
        max_retries: 0,
    };
    let report = run_suite_governed_with_runner(&workloads, &config, &options, |w, c| {
        if w.name == poisoned {
            panic!("injected fault");
        }
        run_on_psi(w, c)
    });
    assert_eq!(report.rows.len(), workloads.len());
    assert_eq!(report.panicked_count(), 1);
    assert_eq!(report.ok_count(), workloads.len() - 1);

    for (w, row) in workloads.iter().zip(&report.rows) {
        if w.name == poisoned {
            assert!(
                matches!(&row.outcome, Outcome::Panicked { detail } if detail.contains(poisoned)),
                "poisoned row not contained: {}",
                row.outcome.label()
            );
            continue;
        }
        let governed = row
            .run()
            .unwrap_or_else(|| panic!("{} should be ok", w.name));
        let serial = run_on_psi(w, MachineConfig::psi()).expect("serial fidelity run succeeds");
        assert_eq!(serial.solutions, governed.solutions, "{}", w.name);
        assert_eq!(
            deterministic_view(&serial.stats),
            deterministic_view(&governed.stats),
            "{}: governed compiled-lane row diverges from serial fidelity run",
            w.name
        );
    }
}

/// The compiled flag is only honored together with measurement-off:
/// a full-measurement config with `compiled: true` still runs the
/// fidelity lane (the cache model needs per-access fidelity), with
/// cache statistics intact.
#[test]
fn compiled_flag_is_inert_in_the_fidelity_lane() {
    let mut config = MachineConfig::psi();
    config.compiled = true;
    assert_eq!(config.measurement, Measurement::Full);
    let program = Program::parse("p(1). p(2).").expect("parses");
    let mut m = Machine::load(&program, config).expect("loads");
    let mut reference = Machine::load(&program, MachineConfig::psi()).expect("loads");
    assert_eq!(
        m.solve("p(X)", 9).expect("solves"),
        reference.solve("p(X)", 9).expect("solves")
    );
    let (a, b) = (m.stats(), reference.stats());
    assert_eq!(a, b, "fidelity stats (including cache) must be untouched");
    assert_eq!(m.metrics_snapshot().get(Counter::FusedDispatches), 0);
}
