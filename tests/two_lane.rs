//! Cross-lane equivalence: the throughput lane
//! (`MachineConfig::psi_throughput()`, measurement off) must be
//! observationally identical to the fidelity lane for everything the
//! paper's tables derive from microstep accounting — solutions and
//! bindings, total steps, per-module tallies (Table 2), branch-field
//! tallies (Table 7), call/choice-point counts and indexing stats.
//!
//! Quantities that exist *only* to be measured — work-file access
//! counts (Table 6), cache statistics (Tables 3–5), stall time — are
//! deliberately not compared: skipping them is the whole point of the
//! throughput lane.

use psi::kl0::Program;
use psi::psi_core::{PsiError, Resource};
use psi::psi_machine::{Machine, MachineConfig, MachineStats, ResourceLimits};
use psi::psi_workloads::runner::{
    run_on_psi, run_on_psi_machine, run_suite_governed_with_runner, Outcome, SuiteOptions,
};
use psi::psi_workloads::suite::table1_suite;
use psi::psi_workloads::Workload;

/// Everything that must be bit-identical across lanes. `MachineStats`
/// itself is *not* compared wholesale — `wf`, `cache`, `stall_ns` and
/// `time_ns` legitimately differ when measurement is off.
fn deterministic_view(stats: &MachineStats) -> impl PartialEq + std::fmt::Debug {
    (
        stats.steps,
        stats.modules,
        stats.branches,
        stats.user_calls,
        stats.builtin_calls,
        stats.choice_points,
        stats.indexed_calls,
        stats.index_direct_entries,
    )
}

#[test]
fn all_table1_rows_are_lane_invariant() {
    for entry in table1_suite() {
        let w = &entry.workload;
        let (fid, fid_machine) = run_on_psi_machine(w, MachineConfig::psi()).unwrap_or_else(|e| {
            panic!("{} fidelity: {e}", w.name);
        });
        let (thr, thr_machine) = run_on_psi_machine(w, MachineConfig::psi_throughput())
            .unwrap_or_else(|e| {
                panic!("{} throughput: {e}", w.name);
            });
        assert_eq!(fid.solutions, thr.solutions, "{}: solutions differ", w.name);
        assert_eq!(
            deterministic_view(&fid.stats),
            deterministic_view(&thr.stats),
            "{}: deterministic counters differ between lanes",
            w.name
        );
        assert_eq!(
            fid_machine.hot_path_alloc_count(),
            0,
            "{}: fidelity lane allocated on the hot path",
            w.name
        );
        assert_eq!(
            thr_machine.hot_path_alloc_count(),
            0,
            "{}: throughput lane allocated on the hot path",
            w.name
        );
    }
}

/// Same property under the first-argument-indexing profile: the lane
/// flag and the indexing flag must compose without interference.
#[test]
fn indexed_profile_is_lane_invariant() {
    let mut throughput_indexed = MachineConfig::psi_indexed();
    throughput_indexed.measurement = psi::psi_core::Measurement::Off;
    for entry in table1_suite() {
        let w = &entry.workload;
        let fid = run_on_psi(w, MachineConfig::psi_indexed())
            .unwrap_or_else(|e| panic!("{} fidelity/indexed: {e}", w.name));
        let thr = run_on_psi(w, throughput_indexed.clone())
            .unwrap_or_else(|e| panic!("{} throughput/indexed: {e}", w.name));
        assert_eq!(fid.solutions, thr.solutions, "{}", w.name);
        assert_eq!(
            deterministic_view(&fid.stats),
            deterministic_view(&thr.stats),
            "{}: indexed deterministic counters differ between lanes",
            w.name
        );
    }
}

/// Bindings, not just rendered solution lines: drive one query with a
/// named variable through both lanes and compare the terms it binds.
#[test]
fn solution_bindings_are_lane_invariant() {
    let src = "app([], L, L).\n\
               app([H|T], L, [H|R]) :- app(T, L, R).\n\
               perm([], []).\n\
               perm(L, [H|T]) :- sel(H, L, R), perm(R, T).\n\
               sel(X, [X|T], T).\n\
               sel(X, [H|T], [H|R]) :- sel(X, T, R).";
    let program = Program::parse(src).expect("parses");
    let mut fid = Machine::load(&program, MachineConfig::psi()).expect("loads");
    let mut thr = Machine::load(&program, MachineConfig::psi_throughput()).expect("loads");
    let fid_solutions = fid.solve("perm([1,2,3], P)", usize::MAX).expect("solves");
    let thr_solutions = thr.solve("perm([1,2,3], P)", usize::MAX).expect("solves");
    assert_eq!(fid_solutions.len(), 6);
    assert_eq!(fid_solutions.len(), thr_solutions.len());
    for (f, t) in fid_solutions.iter().zip(&thr_solutions) {
        assert_eq!(
            f.binding("P").map(|b| b.to_string()),
            t.binding("P").map(|b| b.to_string()),
            "bindings diverge between lanes"
        );
    }
}

/// Resource budgets meter the same step counter in both lanes, so a
/// budget must trip at the same typed error with the same consumption
/// — the throughput lane is faster, never less contained.
#[test]
fn step_budget_exhaustion_is_lane_invariant() {
    let program = Program::parse("spin :- spin.").expect("parses");
    let limit = 150_000u64;
    let mut consumed_by_lane = Vec::new();
    for config in [MachineConfig::psi(), MachineConfig::psi_throughput()] {
        let mut config = config;
        config.limits = ResourceLimits::unlimited().with_max_steps(limit);
        let mut machine = Machine::load(&program, config).expect("loads");
        match machine.solve("spin", 1) {
            Err(PsiError::ResourceExhausted {
                resource: Resource::Steps,
                limit: l,
                consumed,
            }) => {
                assert_eq!(l, limit);
                consumed_by_lane.push(consumed);
            }
            other => panic!("expected step exhaustion, got {other:?}"),
        }
    }
    assert_eq!(
        consumed_by_lane[0], consumed_by_lane[1],
        "lanes tripped the step budget at different points"
    );
}

/// Panic containment composes with the throughput lane: one injected
/// fault costs exactly its own row, and the surviving rows carry the
/// same deterministic counters as serial fidelity runs.
#[test]
fn fault_isolation_holds_in_the_throughput_lane() {
    let workloads: Vec<Workload> = table1_suite().into_iter().map(|e| e.workload).collect();
    let poisoned = "quick sort";
    let config = MachineConfig::psi_throughput();
    let options = SuiteOptions {
        threads: 4,
        deadline: None,
        max_retries: 0,
    };
    let report = run_suite_governed_with_runner(&workloads, &config, &options, |w, c| {
        if w.name == poisoned {
            panic!("injected fault");
        }
        run_on_psi(w, c)
    });
    assert_eq!(report.rows.len(), workloads.len());
    assert_eq!(report.panicked_count(), 1);
    assert_eq!(report.ok_count(), workloads.len() - 1);

    for (w, row) in workloads.iter().zip(&report.rows) {
        if w.name == poisoned {
            assert!(
                matches!(&row.outcome, Outcome::Panicked { detail } if detail.contains(poisoned)),
                "poisoned row not contained: {}",
                row.outcome.label()
            );
            continue;
        }
        let governed = row
            .run()
            .unwrap_or_else(|| panic!("{} should be ok", w.name));
        let serial = run_on_psi(w, MachineConfig::psi()).expect("serial fidelity run succeeds");
        assert_eq!(serial.solutions, governed.solutions, "{}", w.name);
        assert_eq!(
            deterministic_view(&serial.stats),
            deterministic_view(&governed.stats),
            "{}: governed throughput row diverges from serial fidelity run",
            w.name
        );
    }
}
