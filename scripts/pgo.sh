#!/usr/bin/env bash
# Profile-guided optimization build of the perfbench harness:
# instrument -> train on the heavy Table 1 rows -> merge profiles ->
# rebuild with the merged profile. The training run uses `--rows`, so
# it never overwrites the archived BENCH_psi.json.
#
# Usage: scripts/pgo.sh [--build-only] [--train-rows SPEC]
#
#   --build-only      stop after the instrumented build. CI smoke mode:
#                     proves the toolchain accepts the PGO flags
#                     without paying for training and the rebuild.
#   --train-rows SPEC Table 1 rows to train on, in perfbench --rows
#                     syntax (default: "tarai3,fib10,BUP-3,queens").
#
# Degrades gracefully instead of failing the build:
#   * no llvm-profdata on PATH            -> warn, exit 0
#   * profile merge fails (LLVM version   -> warn, exit 0
#     mismatch between rustc and the
#     system llvm-profdata is the usual
#     cause)
# A hard failure of cargo itself still exits nonzero.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

build_only=0
train_rows="tarai3,fib10,BUP-3,queens"
while [ $# -gt 0 ]; do
    case "$1" in
        --build-only) build_only=1 ;;
        --train-rows)
            shift
            [ $# -gt 0 ] || { echo "pgo.sh: --train-rows needs a value" >&2; exit 2; }
            train_rows="$1"
            ;;
        *) echo "usage: scripts/pgo.sh [--build-only] [--train-rows SPEC]" >&2; exit 2 ;;
    esac
    shift
done

prof_dir="$root/target/pgo-profiles"
target_dir="$root/target/pgo"
rm -rf "$prof_dir"
mkdir -p "$prof_dir"

echo "pgo: instrumented build (profile-generate)"
RUSTFLAGS="-Cprofile-generate=$prof_dir" \
    cargo build --release -p psi-bench --bin perfbench --target-dir "$target_dir"

if [ "$build_only" = 1 ]; then
    echo "pgo: --build-only, stopping after the instrumented build"
    exit 0
fi

# Prefer the toolchain's own llvm-profdata (its profile format always
# matches rustc's LLVM); fall back to the system binary.
profdata=""
sysroot="$(rustc --print sysroot)"
for cand in "$sysroot"/lib/rustlib/*/bin/llvm-profdata; do
    [ -x "$cand" ] && profdata="$cand" && break
done
if [ -z "$profdata" ]; then
    profdata="$(command -v llvm-profdata || true)"
fi
if [ -z "$profdata" ]; then
    echo "pgo: no llvm-profdata found (install the llvm-tools rustup" >&2
    echo "pgo: component or a system LLVM); skipping the PGO rebuild" >&2
    exit 0
fi

echo "pgo: training on rows: $train_rows"
"$target_dir/release/perfbench" --quick --rows "$train_rows"

echo "pgo: merging profiles with $profdata"
if ! "$profdata" merge -o "$prof_dir/merged.profdata" "$prof_dir"/*.profraw; then
    echo "pgo: profile merge failed — usually an LLVM version mismatch" >&2
    echo "pgo: (rustc: $(rustc -vV | sed -n 's/^LLVM version: //p');" >&2
    echo "pgo:  profdata: $profdata); skipping the PGO rebuild" >&2
    exit 0
fi

echo "pgo: optimized rebuild (profile-use)"
RUSTFLAGS="-Cprofile-use=$prof_dir/merged.profdata" \
    cargo build --release -p psi-bench --bin perfbench --target-dir "$target_dir"

echo "pgo: done — PGO binary at $target_dir/release/perfbench"
if [ -x "$root/target/release/perfbench" ]; then
    echo "pgo: before/after spot check (3 runs each, heavy rows):"
    for label in baseline pgo; do
        bin="$root/target/release/perfbench"
        [ "$label" = pgo ] && bin="$target_dir/release/perfbench"
        for i in 1 2 3; do
            echo "--- $label run $i"
            "$bin" --quick --rows "tarai3,fib10" | tail -n +2
        done
    done
fi
