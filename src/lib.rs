//! Facade crate re-exporting every subsystem of the PSI machine
//! reproduction. See README.md for the architecture overview.
#![forbid(unsafe_code)]

pub use dec10;
pub use kl0;
pub use psi_cache;
pub use psi_core;
pub use psi_machine;
pub use psi_mem;
pub use psi_obs;
pub use psi_server;
pub use psi_tools;
pub use psi_workloads;
